//! Minimal deadlock witnesses: when a design is cyclic, find the
//! *shortest* dependency cycle and render it as the packet scenario that
//! realizes it — the counterexample a designer actually wants to read.

use crate::graph::{Cdg, ConcreteChannel};

/// The shortest dependency cycle of a CDG, or `None` when acyclic.
///
/// Runs one BFS per node over the dependency edges (O(V·E)); CDGs at
/// verification scale are small enough for this to be instant.
pub fn shortest_cycle(cdg: &Cdg) -> Option<Vec<ConcreteChannel>> {
    let n = cdg.node_count();
    let mut best: Option<Vec<u32>> = None;
    for start in 0..n as u32 {
        // BFS from each successor of `start` back to `start`.
        let mut parent = vec![u32::MAX; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &s in cdg.successors(start as usize) {
            if s == start {
                return Some(vec![cdg.channels()[start as usize]]); // self-loop
            }
            if dist[s as usize] == u32::MAX {
                dist[s as usize] = 1;
                parent[s as usize] = start;
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            if let Some(b) = &best {
                if dist[v as usize] + 1 >= b.len() as u32 {
                    continue; // cannot beat the current best
                }
            }
            for &w in cdg.successors(v as usize) {
                if w == start {
                    // Reconstruct start -> ... -> v -> start.
                    let mut cycle = vec![v];
                    let mut cur = v;
                    while cur != start {
                        cur = parent[cur as usize];
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                        best = Some(cycle);
                    }
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    parent[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
    }
    best.map(|idxs| {
        idxs.into_iter()
            .map(|i| cdg.channels()[i as usize])
            .collect()
    })
}

/// Renders a dependency cycle as the blocked-packet scenario it
/// represents: one line per channel, stating who holds it and what it
/// waits for.
pub fn describe_scenario(cycle: &[ConcreteChannel]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "deadlock scenario with {} packets, one per held channel:",
        cycle.len()
    );
    for (i, c) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        let _ = writeln!(
            out,
            "  packet {} holds {c} and waits for {next}",
            (b'A' + (i % 26) as u8) as char
        );
    }
    out.push_str("every channel is held and awaited: no packet can advance.\n");
    out
}

/// Renders a dependency cycle as a machine-readable JSON array, one object
/// per concrete channel in cycle order — the export consumed by the
/// differential oracle when it persists a disagreement witness next to the
/// flight-recorder trace.
///
/// Fields per element: `from`/`to` node ids, `dim` (printable dimension
/// name), `dir` (`"+"`/`"-"`) and `vc` (1-based).
pub fn cycle_json(cycle: &[ConcreteChannel]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, c) in cycle.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"from\":{},\"to\":{},\"dim\":\"{}\",\"dir\":\"{}\",\"vc\":{}}}",
            c.from, c.to, c.dim, c.dir, c.vc
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use ebda_core::{parse_channels, Turn, TurnSet};

    fn cyclic_cdg(radix: usize) -> Cdg {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b && a.dim != b.dim {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        Cdg::from_turn_set(&Topology::mesh(&[radix, radix]), &[1, 1], &universe, &turns)
    }

    #[test]
    fn shortest_cycle_is_the_unit_square() {
        // All turns allowed: the shortest cycle is the 4-channel loop
        // around one mesh square.
        let cdg = cyclic_cdg(4);
        let cycle = shortest_cycle(&cdg).expect("cyclic by construction");
        assert_eq!(cycle.len(), 4, "unit square expected, got {cycle:?}");
        // It must be a genuine closed chain of adjacent links.
        for i in 0..cycle.len() {
            assert_eq!(cycle[i].to, cycle[(i + 1) % cycle.len()].from);
        }
    }

    #[test]
    fn acyclic_cdgs_have_no_witness() {
        let seq = ebda_core::PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = ebda_core::extract_turns(&seq).unwrap();
        let universe = crate::dally::design_universe(&seq);
        let cdg = Cdg::from_turn_set(&Topology::mesh(&[4, 4]), &[1, 1], &universe, ex.turn_set());
        assert!(shortest_cycle(&cdg).is_none());
    }

    #[test]
    fn scenario_text_names_every_packet() {
        let cdg = cyclic_cdg(3);
        let cycle = shortest_cycle(&cdg).unwrap();
        let text = describe_scenario(&cycle);
        assert!(text.contains("packet A holds"));
        assert!(text.contains("packet D holds"));
        assert!(text.contains("no packet can advance"));
        assert_eq!(text.matches("waits for").count(), cycle.len());
    }

    #[test]
    fn cycle_json_is_parseable_and_complete() {
        let cdg = cyclic_cdg(3);
        let cycle = shortest_cycle(&cdg).unwrap();
        let json = cycle_json(&cycle);
        let doc = ebda_obs::json::Value::parse(&json).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), cycle.len());
        for (v, c) in arr.iter().zip(&cycle) {
            assert_eq!(v.get("from").unwrap().as_u64().unwrap(), c.from as u64);
            assert_eq!(v.get("to").unwrap().as_u64().unwrap(), c.to as u64);
            assert_eq!(v.get("vc").unwrap().as_u64().unwrap(), u64::from(c.vc));
            let dir = v.get("dir").unwrap().as_str().unwrap();
            assert!(dir == "+" || dir == "-");
        }
    }

    #[test]
    fn shortest_is_no_longer_than_any_dfs_witness() {
        let cdg = cyclic_cdg(5);
        let shortest = shortest_cycle(&cdg).unwrap();
        let dfs = cdg.find_cycle().unwrap();
        assert!(shortest.len() <= dfs.len());
    }
}
