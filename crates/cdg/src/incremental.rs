//! Incremental re-verification: dirty-SCC rechecks instead of full CDG
//! rebuilds.
//!
//! The design loop the paper motivates — enumerate, verify, fix — edits
//! a design one turn, one channel class, or one link at a time, yet
//! every verification query used to rebuild the whole channel
//! dependency graph. An [`IncrementalVerifier`] keeps the CDG of a base
//! design as a shared [`Csr`] plus its Tarjan SCC structure, and
//! answers *what-if* queries by work proportional to the dirty region:
//!
//! 1. **Delta edge set.** A removed turn or channel class can only
//!    delete edges incident to concrete channels matching the touched
//!    class; those candidate slots are re-evaluated under the edited
//!    rule and collected into an [`EdgeMask`].
//! 2. **Affected SCCs.** Removing edges from an acyclic graph keeps it
//!    acyclic (zero work). On a cyclic base, any cycle of the reduced
//!    graph lies inside one strongly connected component of the base —
//!    so a cyclic SCC that lost no internal edge stays cyclic
//!    (early-exit), and only touched cyclic SCCs need rechecking.
//! 3. **Localized recheck.** Each touched cyclic SCC is re-searched in
//!    isolation over the masked CSR ([`crate::csr::has_cycle_within`]).
//!
//! Additions are the mirror image: a cyclic base stays cyclic, and an
//! acyclic base gains a cycle iff some added edge `u -> v` has `u`
//! reachable from `v`. Link failures and VC-mix changes fall back to a
//! full rebuild (counted under `incr:fallbacks`) for the *apply* path,
//! while the fail-link *query* is still answered incrementally by
//! masking all edges incident to the dead channels.
//!
//! Queries take `&self` and are safe to issue from parallel shrink
//! waves; `apply_*` methods commit a delta, maintaining the exact CSR
//! the full build would produce (asserted structurally in cross-check
//! mode, enabled via `EBDA_INCR_CHECK=1` or
//! [`IncrementalVerifier::set_cross_check`]).

use crate::csr::{self, Csr, EdgeMask, SccInfo};
use crate::graph::{Cdg, ConcreteChannel};
use crate::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction, Turn, TurnSet};
use std::collections::BTreeMap;

/// Edges a turn addition creates: the flat `(source, target)` delta
/// list plus the per-source successor overlay used by the reachability
/// probe before the edges exist in the CSR.
type GainedEdges = (Vec<(u32, u32)>, BTreeMap<u32, Vec<u32>>);

/// Incremental Dally verifier over one base design.
///
/// Holds the base `(topology, vcs, universe, turns)` plus the derived
/// CDG in CSR form and its SCC structure. Query methods answer "would
/// this one-step edit leave the CDG acyclic?" without mutating the
/// base; apply methods commit the edit.
#[derive(Debug, Clone)]
pub struct IncrementalVerifier {
    topo: Topology,
    vcs: Vec<u8>,
    universe: Vec<Channel>,
    turns: TurnSet,
    channels: Vec<ConcreteChannel>,
    /// Universe indices matching each concrete channel (value-filtered).
    matches: Vec<Vec<u32>>,
    /// Concrete channels matching each universe entry (the transpose).
    class_members: Vec<Vec<u32>>,
    /// Channel indices grouped by source node (`Cdg::by_source_node`).
    node_starts: Vec<u32>,
    node_idx: Vec<u32>,
    csr: Csr,
    /// Predecessor lists per node, ascending.
    rev: Vec<Vec<u32>>,
    scc: SccInfo,
    acyclic: bool,
    check: bool,
}

impl IncrementalVerifier {
    /// Builds the verifier for a base design. Cross-check mode starts
    /// from the `EBDA_INCR_CHECK` environment variable (`1`/`on`/
    /// `true` enable it).
    pub fn new(
        topo: Topology,
        vcs: Vec<u8>,
        universe: Vec<Channel>,
        turns: TurnSet,
    ) -> IncrementalVerifier {
        let check = matches!(
            std::env::var("EBDA_INCR_CHECK").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        );
        let mut v = IncrementalVerifier {
            topo,
            vcs,
            universe,
            turns,
            channels: Vec::new(),
            matches: Vec::new(),
            class_members: Vec::new(),
            node_starts: Vec::new(),
            node_idx: Vec::new(),
            csr: Csr::new(0, vec![0], Vec::new()),
            rev: Vec::new(),
            scc: SccInfo {
                comp_of: Vec::new(),
                comp_nodes: Vec::new(),
                cyclic: Vec::new(),
            },
            acyclic: true,
            check,
        };
        v.rebuild();
        v
    }

    /// Forces the debug cross-check mode on or off: every query and
    /// apply re-verifies against a full rebuild and panics on any
    /// divergence.
    pub fn set_cross_check(&mut self, on: bool) {
        self.check = on;
    }

    /// Whether the base design's CDG is acyclic (Dally-deadlock-free).
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// The base topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The base turn set.
    pub fn turns(&self) -> &TurnSet {
        &self.turns
    }

    /// The concrete channels of the base CDG.
    pub fn channels(&self) -> &[ConcreteChannel] {
        &self.channels
    }

    /// A cycle witness of the base CDG, or `None` when acyclic. Walks
    /// the same CSR with the same traversal as [`Cdg::find_cycle`], so
    /// witnesses are byte-identical to the full build's.
    pub fn find_cycle(&self) -> Option<Vec<ConcreteChannel>> {
        csr::find_cycle(&self.csr).map(|idxs| {
            idxs.into_iter()
                .map(|i| self.channels[i as usize])
                .collect()
        })
    }

    fn rebuild(&mut self) {
        let cdg = Cdg::from_turn_set(&self.topo, &self.vcs, &self.universe, &self.turns);
        self.channels = cdg.channels().to_vec();
        self.csr = cdg.csr().clone();
        self.matches = Cdg::class_matches(&self.topo, &self.channels, &self.universe);
        let mut class_members = vec![Vec::new(); self.universe.len()];
        for (u, m) in self.matches.iter().enumerate() {
            for &ci in m {
                class_members[ci as usize].push(u as u32);
            }
        }
        self.class_members = class_members;
        let (starts, idx) = Cdg::by_source_node(&self.topo, &self.channels);
        self.node_starts = starts;
        self.node_idx = idx;
        let n = self.channels.len();
        let mut rev = vec![Vec::new(); n];
        for u in 0..n {
            for &v in self.csr.row(u) {
                rev[v as usize].push(u as u32);
            }
        }
        self.rev = rev;
        self.refresh_scc();
    }

    fn refresh_scc(&mut self) {
        self.scc = csr::tarjan(&self.csr);
        self.acyclic = self.scc.acyclic();
    }

    /// Channel indices leaving `node`.
    fn node_channels(&self, node: NodeId) -> &[u32] {
        &self.node_idx[self.node_starts[node] as usize..self.node_starts[node + 1] as usize]
    }

    /// Whether the edge `u -> v` survives once turn `t` is removed.
    /// Value-based: duplicate universe entries equal to `t.from`/`t.to`
    /// are all treated as removed-pair candidates.
    fn allowed_without_turn(&self, u: usize, v: usize, t: Turn) -> bool {
        self.matches[u].iter().any(|&x| {
            let cx = self.universe[x as usize];
            self.matches[v].iter().any(|&y| {
                let cy = self.universe[y as usize];
                if cx == cy {
                    return true;
                }
                if cx == t.from && cy == t.to {
                    return false;
                }
                self.turns.contains(Turn { from: cx, to: cy })
            })
        })
    }

    /// Whether the edge `u -> v` survives once channel class `victim`
    /// is dropped from the universe (shrinker case: turns touching the
    /// victim go with it, but a pair not touching it is unaffected).
    fn allowed_without_channel(&self, u: usize, v: usize, victim: Channel) -> bool {
        self.matches[u].iter().any(|&x| {
            let cx = self.universe[x as usize];
            cx != victim
                && self.matches[v].iter().any(|&y| {
                    let cy = self.universe[y as usize];
                    cy != victim && self.turns.allows(cx, cy)
                })
        })
    }

    /// Collects the edges that disappear when `t` is removed: only
    /// out-edges of channels matching `t.from` whose target matches
    /// `t.to` can change, and each such slot is re-evaluated under the
    /// edited rule.
    fn edges_lost_by_turn(&self, t: Turn) -> (Vec<(u32, u32)>, EdgeMask) {
        let mut mask = EdgeMask::new(self.csr.edge_count());
        let mut removed = Vec::new();
        for ci in 0..self.universe.len() {
            if self.universe[ci] != t.from {
                continue;
            }
            for &u in &self.class_members[ci] {
                let base = self.csr.edge_base(u as usize);
                for (k, &v) in self.csr.row(u as usize).iter().enumerate() {
                    if mask.get(base + k) {
                        continue;
                    }
                    if !self.matches[v as usize]
                        .iter()
                        .any(|&y| self.universe[y as usize] == t.to)
                    {
                        continue;
                    }
                    if self.allowed_without_turn(u as usize, v as usize, t) {
                        continue;
                    }
                    mask.set(base + k);
                    removed.push((u, v));
                }
            }
        }
        (removed, mask)
    }

    /// Collects the edges that disappear when channel class `victim` is
    /// dropped: out- and in-edges of its member channels, re-evaluated
    /// without the victim.
    fn edges_lost_by_channel(&self, victim: Channel) -> (Vec<(u32, u32)>, EdgeMask) {
        let mut mask = EdgeMask::new(self.csr.edge_count());
        let mut removed = Vec::new();
        for ci in 0..self.universe.len() {
            if self.universe[ci] != victim {
                continue;
            }
            for &u in &self.class_members[ci] {
                let base = self.csr.edge_base(u as usize);
                for (k, &v) in self.csr.row(u as usize).iter().enumerate() {
                    if !mask.get(base + k)
                        && !self.allowed_without_channel(u as usize, v as usize, victim)
                    {
                        mask.set(base + k);
                        removed.push((u, v));
                    }
                }
                for &w in &self.rev[u as usize] {
                    let ei = self
                        .csr
                        .edge_index(w as usize, u)
                        .expect("reverse adjacency tracks a real edge");
                    if !mask.get(ei)
                        && !self.allowed_without_channel(w as usize, u as usize, victim)
                    {
                        mask.set(ei);
                        removed.push((w, u));
                    }
                }
            }
        }
        (removed, mask)
    }

    /// The dirty-SCC verdict for an edge-removal delta on a cyclic
    /// base: a cyclic SCC that lost no internal edge stays cyclic;
    /// every touched cyclic SCC is rechecked in isolation.
    fn removal_verdict(&self, removed: &[(u32, u32)], mask: &EdgeMask) -> bool {
        ebda_obs::prof::work("incr", "dirty_edges", removed.len() as u64);
        let ncomp = self.scc.comp_nodes.len();
        let mut touched = vec![false; ncomp];
        for &(u, v) in removed {
            let cu = self.scc.comp_of[u as usize];
            if cu == self.scc.comp_of[v as usize] {
                touched[cu as usize] = true;
            }
        }
        if (0..ncomp).any(|c| self.scc.cyclic[c] && !touched[c]) {
            return false;
        }
        for (c, &was_touched) in touched.iter().enumerate() {
            if !(self.scc.cyclic[c] && was_touched) {
                continue;
            }
            ebda_obs::prof::work("incr", "scc_rechecked", 1);
            let (cyclic, visited) = csr::has_cycle_within(
                &self.csr,
                &self.scc.comp_nodes[c],
                &self.scc.comp_of,
                c as u32,
                mask,
            );
            ebda_obs::prof::work("incr", "edges_visited", visited);
            if cyclic {
                return false;
            }
        }
        true
    }

    /// Would the CDG be acyclic with turn `t` removed?
    pub fn query_remove_turn(&self, t: Turn) -> bool {
        ebda_obs::prof::work("incr", "queries", 1);
        let got = self.remove_turn_verdict(t);
        if self.check {
            let mut turns = TurnSet::new();
            for x in self.turns.iter().filter(|&x| x != t) {
                turns.insert(x);
            }
            let want =
                Cdg::from_turn_set(&self.topo, &self.vcs, &self.universe, &turns).is_acyclic();
            assert_eq!(got, want, "incremental remove-turn verdict diverged: {t:?}");
        }
        got
    }

    fn remove_turn_verdict(&self, t: Turn) -> bool {
        if t.from == t.to || !self.turns.contains(t) {
            return self.acyclic;
        }
        if self.acyclic {
            // Removal is monotone: an acyclic graph stays acyclic.
            return true;
        }
        let (removed, mask) = self.edges_lost_by_turn(t);
        self.removal_verdict(&removed, &mask)
    }

    /// Would the CDG be acyclic with channel class `victim` dropped
    /// from the universe (all occurrences, plus the turns touching it —
    /// the shrinker's drop-channel delta)?
    pub fn query_remove_channel(&self, victim: Channel) -> bool {
        ebda_obs::prof::work("incr", "queries", 1);
        let got = self.remove_channel_verdict(victim);
        if self.check {
            let universe: Vec<Channel> = self
                .universe
                .iter()
                .copied()
                .filter(|&c| c != victim)
                .collect();
            let mut turns = TurnSet::new();
            for x in self.turns.iter() {
                if x.from != victim && x.to != victim {
                    turns.insert(x);
                }
            }
            let want = Cdg::from_turn_set(&self.topo, &self.vcs, &universe, &turns).is_acyclic();
            assert_eq!(
                got, want,
                "incremental remove-channel verdict diverged: {victim:?}"
            );
        }
        got
    }

    fn remove_channel_verdict(&self, victim: Channel) -> bool {
        if !self.universe.contains(&victim) {
            return self.acyclic;
        }
        if self.acyclic {
            return true;
        }
        let (removed, mask) = self.edges_lost_by_channel(victim);
        self.removal_verdict(&removed, &mask)
    }

    /// Would the CDG be acyclic with the link `node --dim/dir-->`
    /// failed (both traversal directions die, as in
    /// [`Topology::with_failed_link`])?
    pub fn query_fail_link(&self, node: NodeId, dim: Dimension, dir: Direction) -> bool {
        ebda_obs::prof::work("incr", "queries", 1);
        let got = self.fail_link_verdict(node, dim, dir);
        if self.check {
            let failed = self.topo.clone().with_failed_link(node, dim, dir);
            let want =
                Cdg::from_turn_set(&failed, &self.vcs, &self.universe, &self.turns).is_acyclic();
            assert_eq!(
                got, want,
                "incremental fail-link verdict diverged: {node} {dim:?} {dir:?}"
            );
        }
        got
    }

    fn fail_link_verdict(&self, node: NodeId, dim: Dimension, dir: Direction) -> bool {
        let Some(other) = self.topo.neighbor(node, dim, dir) else {
            return self.acyclic;
        };
        let mut dead: Vec<u32> = Vec::new();
        for &u in self.node_channels(node) {
            let c = self.channels[u as usize];
            if c.dim == dim && c.dir == dir {
                dead.push(u);
            }
        }
        for &u in self.node_channels(other) {
            let c = self.channels[u as usize];
            if c.dim == dim && c.dir == dir.opposite() {
                dead.push(u);
            }
        }
        if dead.is_empty() {
            return self.acyclic;
        }
        if self.acyclic {
            return true;
        }
        // Masking every edge incident to a dead channel leaves the dead
        // nodes isolated — equivalent, for acyclicity, to deleting them.
        let mut mask = EdgeMask::new(self.csr.edge_count());
        let mut removed = Vec::new();
        for &u in &dead {
            let base = self.csr.edge_base(u as usize);
            for (k, &v) in self.csr.row(u as usize).iter().enumerate() {
                if mask.set(base + k) {
                    removed.push((u, v));
                }
            }
            for &w in &self.rev[u as usize] {
                let ei = self
                    .csr
                    .edge_index(w as usize, u)
                    .expect("reverse adjacency tracks a real edge");
                if mask.set(ei) {
                    removed.push((w, u));
                }
            }
        }
        self.removal_verdict(&removed, &mask)
    }

    /// The edges that appear when turn `t` is added: candidate slots
    /// are adjacent pairs whose source matches `t.from` and target
    /// matches `t.to` that had no edge before.
    fn edges_gained_by_turn(&self, t: Turn) -> GainedEdges {
        let mut added = Vec::new();
        let mut extra: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for ci in 0..self.universe.len() {
            if self.universe[ci] != t.from {
                continue;
            }
            for &u in &self.class_members[ci] {
                let c = self.channels[u as usize];
                for &v in self.node_channels(c.to) {
                    if self.csr.has_edge(u as usize, v) {
                        continue;
                    }
                    if !self.matches[v as usize]
                        .iter()
                        .any(|&y| self.universe[y as usize] == t.to)
                    {
                        continue;
                    }
                    let succs = extra.entry(u).or_default();
                    // Duplicate universe entries revisit the same slot.
                    if succs.last() == Some(&v) || succs.contains(&v) {
                        continue;
                    }
                    succs.push(v);
                    added.push((u, v));
                }
            }
        }
        (added, extra)
    }

    /// Would the CDG be acyclic with turn `t` added? A cyclic base
    /// stays cyclic; an acyclic base gains a cycle iff some added edge
    /// `u -> v` has `u` reachable from `v` over base + added edges.
    pub fn query_add_turn(&self, t: Turn) -> bool {
        ebda_obs::prof::work("incr", "queries", 1);
        let got = self.add_turn_verdict(t);
        if self.check {
            let mut turns = self.turns.clone();
            turns.insert(t);
            let want =
                Cdg::from_turn_set(&self.topo, &self.vcs, &self.universe, &turns).is_acyclic();
            assert_eq!(got, want, "incremental add-turn verdict diverged: {t:?}");
        }
        got
    }

    fn add_turn_verdict(&self, t: Turn) -> bool {
        if t.from == t.to || self.turns.contains(t) {
            return self.acyclic;
        }
        if !self.acyclic {
            // Addition is monotone: a cyclic graph stays cyclic.
            return false;
        }
        let (added, extra) = self.edges_gained_by_turn(t);
        ebda_obs::prof::work("incr", "dirty_edges", added.len() as u64);
        if added.is_empty() {
            return true;
        }
        for &(u, v) in &added {
            if self.reaches(v, u, &extra) {
                return false;
            }
        }
        true
    }

    /// DFS reachability `src ->* dst` over base + extra edges.
    fn reaches(&self, src: u32, dst: u32, extra: &BTreeMap<u32, Vec<u32>>) -> bool {
        let n = self.csr.node_count();
        let mut visited = vec![false; n];
        let mut stack = vec![src];
        let mut edges_visited = 0u64;
        let mut hit = false;
        while let Some(x) = stack.pop() {
            if x == dst {
                hit = true;
                break;
            }
            if std::mem::replace(&mut visited[x as usize], true) {
                continue;
            }
            for &y in self.csr.row(x as usize) {
                edges_visited += 1;
                stack.push(y);
            }
            if let Some(ys) = extra.get(&x) {
                for &y in ys {
                    edges_visited += 1;
                    stack.push(y);
                }
            }
        }
        ebda_obs::prof::work("incr", "edges_visited", edges_visited);
        hit
    }

    /// Commits a turn removal, maintaining the exact CSR a full rebuild
    /// would produce (row-level edits only — no dependency-rule
    /// re-evaluation outside the dirty slots). Returns the new verdict.
    pub fn apply_remove_turn(&mut self, t: Turn) -> bool {
        if t.from == t.to || !self.turns.contains(t) {
            return self.acyclic;
        }
        let (_, mask) = self.edges_lost_by_turn(t);
        self.turns.remove(t);
        self.drop_masked_edges(&mask);
        self.refresh_scc();
        if self.check {
            self.assert_matches_full_rebuild();
        }
        self.acyclic
    }

    /// Commits a turn addition; returns the new verdict.
    pub fn apply_add_turn(&mut self, t: Turn) -> bool {
        if t.from == t.to || self.turns.contains(t) {
            return self.acyclic;
        }
        let (added, extra) = self.edges_gained_by_turn(t);
        self.turns.insert(t);
        if !added.is_empty() {
            self.merge_extra_edges(&extra);
        }
        self.refresh_scc();
        if self.check {
            self.assert_matches_full_rebuild();
        }
        self.acyclic
    }

    /// Commits a link failure. Channel numbering changes, so this is
    /// the documented full-rebuild fallback (counted as
    /// `incr:fallbacks`); the *query* path stays incremental.
    pub fn apply_fail_link(&mut self, node: NodeId, dim: Dimension, dir: Direction) -> bool {
        ebda_obs::prof::work("incr", "fallbacks", 1);
        self.topo = self.topo.clone().with_failed_link(node, dim, dir);
        self.rebuild();
        self.acyclic
    }

    /// Commits a VC-mix change — also a full-rebuild fallback, since
    /// the concrete-channel set itself changes.
    pub fn apply_set_vcs(&mut self, vcs: Vec<u8>) -> bool {
        ebda_obs::prof::work("incr", "fallbacks", 1);
        self.vcs = vcs;
        self.rebuild();
        self.acyclic
    }

    fn drop_masked_edges(&mut self, mask: &EdgeMask) {
        if mask.count() == 0 {
            return;
        }
        let n = self.csr.node_count();
        let mut row_start = Vec::with_capacity(n + 1);
        row_start.push(0u32);
        let mut col = Vec::with_capacity(self.csr.edge_count() - mask.count());
        for u in 0..n {
            let base = self.csr.edge_base(u);
            for (k, &v) in self.csr.row(u).iter().enumerate() {
                if !mask.get(base + k) {
                    col.push(v);
                }
            }
            row_start.push(col.len() as u32);
        }
        self.csr = Csr::new(n, row_start, col);
        self.rebuild_rev();
    }

    fn merge_extra_edges(&mut self, extra: &BTreeMap<u32, Vec<u32>>) {
        let n = self.csr.node_count();
        let total: usize = extra.values().map(Vec::len).sum();
        let mut row_start = Vec::with_capacity(n + 1);
        row_start.push(0u32);
        let mut col = Vec::with_capacity(self.csr.edge_count() + total);
        let empty: Vec<u32> = Vec::new();
        for u in 0..n {
            // Merge two ascending lists to keep the edge-order invariant.
            let old = self.csr.row(u);
            let new = extra.get(&(u as u32)).unwrap_or(&empty);
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < new.len() {
                if j >= new.len() || (i < old.len() && old[i] < new[j]) {
                    col.push(old[i]);
                    i += 1;
                } else {
                    col.push(new[j]);
                    j += 1;
                }
            }
            row_start.push(col.len() as u32);
        }
        self.csr = Csr::new(n, row_start, col);
        self.rebuild_rev();
    }

    fn rebuild_rev(&mut self) {
        let n = self.csr.node_count();
        let mut rev = vec![Vec::new(); n];
        for u in 0..n {
            for &v in self.csr.row(u) {
                rev[v as usize].push(u as u32);
            }
        }
        self.rev = rev;
    }

    /// Cross-check-mode structural assertion: the incrementally
    /// maintained CSR must be *row-for-row identical* to a fresh full
    /// build (the edge-order invariant makes this comparison exact).
    fn assert_matches_full_rebuild(&self) {
        let cdg = Cdg::from_turn_set(&self.topo, &self.vcs, &self.universe, &self.turns);
        assert_eq!(
            self.csr.node_count(),
            cdg.node_count(),
            "incremental CSR node count diverged from full rebuild"
        );
        for u in 0..self.csr.node_count() {
            assert_eq!(
                self.csr.row(u),
                cdg.successors(u),
                "incremental CSR row {u} diverged from full rebuild"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::parse_channels;

    fn all_turns(universe: &[Channel]) -> TurnSet {
        let mut turns = TurnSet::new();
        for &a in universe {
            for &b in universe {
                if a != b {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        turns
    }

    fn full_acyclic(topo: &Topology, universe: &[Channel], turns: &TurnSet) -> bool {
        Cdg::from_turn_set(topo, &[1, 1], universe, turns).is_acyclic()
    }

    #[test]
    fn remove_turn_queries_match_full_rebuild() {
        let topo = Topology::mesh(&[4, 4]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = all_turns(&universe);
        let mut v =
            IncrementalVerifier::new(topo.clone(), vec![1, 1], universe.clone(), turns.clone());
        v.set_cross_check(true);
        assert!(!v.is_acyclic());
        for t in turns.iter() {
            // Cross-check mode asserts equivalence internally.
            v.query_remove_turn(t);
        }
    }

    #[test]
    fn apply_chain_drains_to_acyclic() {
        // Remove turns one at a time until the CDG goes acyclic; at
        // every step the incremental verdict must match a full rebuild
        // (and in check mode, the whole CSR must).
        let topo = Topology::mesh(&[3, 3]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = all_turns(&universe);
        let mut v =
            IncrementalVerifier::new(topo.clone(), vec![1, 1], universe.clone(), turns.clone());
        v.set_cross_check(true);
        for t in turns.iter() {
            let got = v.apply_remove_turn(t);
            assert_eq!(got, full_acyclic(&topo, &universe, v.turns()));
        }
        assert!(v.is_acyclic(), "no turns left: straight-only mesh CDG");
        // And back up: re-adding every turn must land on the original.
        for t in turns.iter() {
            v.apply_add_turn(t);
        }
        assert!(!v.is_acyclic());
    }

    #[test]
    fn remove_channel_matches_full_rebuild() {
        let topo = Topology::mesh(&[4, 4]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = all_turns(&universe);
        let mut v =
            IncrementalVerifier::new(topo.clone(), vec![1, 1], universe.clone(), turns.clone());
        v.set_cross_check(true);
        for &victim in &universe {
            v.query_remove_channel(victim);
        }
    }

    #[test]
    fn fail_link_query_matches_full_rebuild() {
        let topo = Topology::torus(&[4, 4]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        // No turns: straight rings deadlock on a torus; failing an
        // X-link on a ring breaks that ring's cycle but not the others.
        let turns = TurnSet::new();
        let mut v =
            IncrementalVerifier::new(topo.clone(), vec![1, 1], universe.clone(), turns.clone());
        v.set_cross_check(true);
        assert!(!v.is_acyclic());
        for node in 0..topo.node_count() {
            for dir in [Direction::Plus, Direction::Minus] {
                v.query_fail_link(node, Dimension::X, dir);
            }
        }
        // Applying commits via the documented full-rebuild fallback.
        let after = v.apply_fail_link(0, Dimension::X, Direction::Plus);
        let failed = topo.with_failed_link(0, Dimension::X, Direction::Plus);
        assert_eq!(after, full_acyclic(&failed, &universe, &turns));
    }

    #[test]
    fn acyclic_base_answers_removals_for_free() {
        // North-last is acyclic: every removal query must return true
        // without any dirty-edge work (monotonicity early-exit).
        let seq = ebda_core::PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = ebda_core::extract_turns(&seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        let mut v =
            IncrementalVerifier::new(topo, vec![1, 1], seq.channels(), ex.turn_set().clone());
        v.set_cross_check(true);
        assert!(v.is_acyclic());
        for t in ex.turn_set().clone().iter() {
            assert!(v.query_remove_turn(t));
        }
    }

    #[test]
    fn witness_matches_full_build_exactly() {
        let topo = Topology::torus(&[4, 4]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = TurnSet::new();
        let v = IncrementalVerifier::new(topo.clone(), vec![1, 1], universe.clone(), turns.clone());
        let cdg = Cdg::from_turn_set(&topo, &[1, 1], &universe, &turns);
        assert_eq!(v.find_cycle(), cdg.find_cycle());
    }
}
