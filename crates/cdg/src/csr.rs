//! Flat CSR/bitset adjacency — the unified graph representation behind
//! every CDG verdict path.
//!
//! A [`Csr`] stores a channel-indexed dependency graph as two flat
//! arrays (`row_start`, `col`) plus, for graphs small enough, u64
//! bitset rows for O(1) edge membership. Dally cycle detection
//! ([`find_cycle`]), the iterative Tarjan SCC pass ([`tarjan`]) and the
//! Duato escape check (via [`crate::dally::verify_turn_set`]) all walk
//! this one structure; the incremental engine
//! ([`crate::incremental::IncrementalVerifier`]) additionally masks
//! individual edge slots with an [`EdgeMask`] to answer what-if queries
//! without rebuilding anything.
//!
//! All traversals share one thread-local visitation scratch buffer
//! (colors, parents, DFS stack, in-degrees, ready-heap), so repeated
//! queries on same-sized graphs perform zero allocations in steady
//! state — the same discipline as the allocation-free engine cycle
//! loop (see `crates/cdg/tests/scratch_allocs.rs`).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bitset rows are materialized only while `nodes * words_per_row`
/// stays under this many u64 words (16 MiB) — verification CDGs are
/// hundreds of nodes, but the cap keeps pathological topologies from
/// allocating quadratic memory for a linear-time algorithm.
const BITSET_WORD_CAP: usize = 1 << 21;

/// Compressed-sparse-row adjacency over `u32` node indices, with
/// optional u64 bitset rows for O(1) `has_edge` queries.
///
/// Construction invariant (documented, relied upon for byte-identical
/// witnesses): rows are laid out in node-index order and every row's
/// successor list ascends. [`crate::Cdg::build`] guarantees this by
/// enumerating candidate successors in channel-enumeration order.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    /// `row_start[i]..row_start[i + 1]` indexes `col` for node `i`.
    row_start: Vec<u32>,
    /// Successor node indices, ascending within each row.
    col: Vec<u32>,
    /// Words per bitset row; 0 when bitset rows are not materialized.
    words_per_row: usize,
    /// Row-major adjacency bitset (`bits[u * words_per_row + v / 64]`).
    bits: Vec<u64>,
}

impl Csr {
    /// Wraps prebuilt CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics when `row_start` is not a monotone prefix over `col` with
    /// `n + 1` entries.
    pub fn new(n: usize, row_start: Vec<u32>, col: Vec<u32>) -> Csr {
        assert_eq!(row_start.len(), n + 1, "row_start needs n + 1 entries");
        assert_eq!(*row_start.last().unwrap() as usize, col.len());
        assert!(row_start.windows(2).all(|w| w[0] <= w[1]));
        let words_per_row = n.div_ceil(64);
        let mut csr = Csr {
            n,
            row_start,
            col,
            words_per_row: 0,
            bits: Vec::new(),
        };
        if n > 0 && n.saturating_mul(words_per_row) <= BITSET_WORD_CAP {
            let mut bits = vec![0u64; n * words_per_row];
            for u in 0..n {
                for &v in csr.row(u) {
                    bits[u * words_per_row + v as usize / 64] |= 1 << (v % 64);
                }
            }
            csr.words_per_row = words_per_row;
            csr.bits = bits;
        }
        csr
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.col.len()
    }

    /// Successors of node `u`, ascending.
    pub fn row(&self, u: usize) -> &[u32] {
        &self.col[self.row_start[u] as usize..self.row_start[u + 1] as usize]
    }

    /// The flat edge-slot index of the first edge of node `u` — edge
    /// `k` of `u`'s row occupies slot `edge_base(u) + k`, the indexing
    /// an [`EdgeMask`] uses.
    pub fn edge_base(&self, u: usize) -> usize {
        self.row_start[u] as usize
    }

    /// The edge-slot index of `u -> v`, or `None` when absent. Rows
    /// ascend, so this is a binary search.
    pub fn edge_index(&self, u: usize, v: u32) -> Option<usize> {
        let row = self.row(u);
        row.binary_search(&v).ok().map(|k| self.edge_base(u) + k)
    }

    /// Whether the edge `u -> v` exists — O(1) via the bitset rows when
    /// they are materialized, binary search otherwise.
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        if self.words_per_row > 0 {
            let w = self.bits[u * self.words_per_row + v as usize / 64];
            w >> (v % 64) & 1 == 1
        } else {
            self.row(u).binary_search(&v).is_ok()
        }
    }

    /// Whether the bitset rows are materialized (size-capped).
    pub fn has_bitset(&self) -> bool {
        self.words_per_row > 0
    }
}

/// A bitset over the edge *slots* of one [`Csr`] — the overlay the
/// incremental engine uses to mark edges as removed without touching
/// the shared arrays. Slot `k` is edge `k` in `col` order (see
/// [`Csr::edge_base`]).
#[derive(Debug, Clone)]
pub struct EdgeMask {
    words: Vec<u64>,
    set: usize,
}

impl EdgeMask {
    /// An all-clear mask over `edges` slots.
    pub fn new(edges: usize) -> EdgeMask {
        EdgeMask {
            words: vec![0u64; edges.div_ceil(64)],
            set: 0,
        }
    }

    /// Marks slot `i`; returns `true` when it was newly set.
    pub fn set(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] >> b & 1 == 0;
        self.words[w] |= 1 << b;
        self.set += usize::from(fresh);
        fresh
    }

    /// Whether slot `i` is marked.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// How many slots are marked.
    pub fn count(&self) -> usize {
        self.set
    }
}

/// Strongly-connected-component structure of a [`Csr`], from [`tarjan`].
/// Components are numbered in discovery (reverse topological) order.
#[derive(Debug, Clone)]
pub struct SccInfo {
    /// Component id per node.
    pub comp_of: Vec<u32>,
    /// Member nodes per component, in Tarjan pop order.
    pub comp_nodes: Vec<Vec<u32>>,
    /// Whether the component can carry a cycle (more than one node, or
    /// a self-loop).
    pub cyclic: Vec<bool>,
}

impl SccInfo {
    /// Whether the whole graph is acyclic (no cyclic component).
    pub fn acyclic(&self) -> bool {
        !self.cyclic.iter().any(|&c| c)
    }
}

/// Shared visitation scratch: every traversal borrows this per-thread
/// buffer instead of allocating its own, so steady-state queries on
/// same-sized graphs never touch the allocator.
struct Scratch {
    color: Vec<u8>,
    parent: Vec<u32>,
    stack: Vec<(u32, u32)>,
    indeg: Vec<u32>,
    heap: BinaryHeap<Reverse<u32>>,
    low: Vec<u32>,
    index: Vec<u32>,
    on_stack: Vec<bool>,
    scc_stack: Vec<u32>,
}

const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

thread_local! {
    static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            color: Vec::new(),
            parent: Vec::new(),
            stack: Vec::new(),
            indeg: Vec::new(),
            heap: BinaryHeap::new(),
            low: Vec::new(),
            index: Vec::new(),
            on_stack: Vec::new(),
            scc_stack: Vec::new(),
        })
    };
}

/// Finds a directed cycle, returning the node indices along it, or
/// `None` for acyclic graphs. Same traversal (iterative three-colour
/// DFS, parent back-walk) and same witness as
/// [`crate::cycle::find_cycle`], but walking the flat CSR arrays with
/// the shared scratch buffer instead of per-call allocations.
pub fn find_cycle(csr: &Csr) -> Option<Vec<u32>> {
    let _span = ebda_obs::span("cdg.cycle.find_cycle");
    let n = csr.node_count();
    let mut edges_visited = 0u64;
    let found = SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.color.clear();
        s.color.resize(n, WHITE);
        s.parent.clear();
        s.parent.resize(n, u32::MAX);
        s.stack.clear();
        for start in 0..n as u32 {
            if s.color[start as usize] != WHITE {
                continue;
            }
            s.color[start as usize] = GRAY;
            s.stack.push((start, 0));
            while let Some(&mut (node, ref mut next)) = s.stack.last_mut() {
                let succs = csr.row(node as usize);
                if (*next as usize) < succs.len() {
                    let v = succs[*next as usize];
                    *next += 1;
                    edges_visited += 1;
                    match s.color[v as usize] {
                        WHITE => {
                            s.parent[v as usize] = node;
                            s.color[v as usize] = GRAY;
                            s.stack.push((v, 0));
                        }
                        GRAY => {
                            // Back edge node -> v: walk parents back.
                            let mut cycle = vec![node];
                            let mut cur = node;
                            while cur != v {
                                cur = s.parent[cur as usize];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            s.stack.clear();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    s.color[node as usize] = BLACK;
                    s.stack.pop();
                }
            }
        }
        None
    });
    ebda_obs::counter_add("cdg.cycle.edges_visited", edges_visited);
    ebda_obs::prof::work("cdg/cycle", "edges_visited", edges_visited);
    if found.is_some() {
        ebda_obs::counter_add("cdg.cycle.cycles_found", 1);
    }
    found
}

/// A deterministic topological order of the node indices, or `None`
/// when the graph is cyclic. Among ready nodes the lowest index goes
/// first — identical output to the `BTreeSet`-based order the CDG used
/// before, but via the scratch min-heap.
pub fn topological_order(csr: &Csr) -> Option<Vec<u32>> {
    let n = csr.node_count();
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.indeg.clear();
        s.indeg.resize(n, 0);
        for u in 0..n {
            for &v in csr.row(u) {
                s.indeg[v as usize] += 1;
            }
        }
        s.heap.clear();
        for v in 0..n as u32 {
            if s.indeg[v as usize] == 0 {
                s.heap.push(Reverse(v));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(v)) = s.heap.pop() {
            order.push(v);
            for &b in csr.row(v as usize) {
                s.indeg[b as usize] -= 1;
                if s.indeg[b as usize] == 0 {
                    s.heap.push(Reverse(b));
                }
            }
        }
        (order.len() == n).then_some(order)
    })
}

/// Tarjan's strongly connected components (iterative) over the CSR,
/// returning the dense [`SccInfo`] the incremental engine indexes by.
/// Components come out in reverse topological order, exactly like
/// [`crate::cycle::tarjan_scc`].
pub fn tarjan(csr: &Csr) -> SccInfo {
    let _span = ebda_obs::span("cdg.cycle.tarjan_scc");
    let n = csr.node_count();
    ebda_obs::prof::work("cdg/scc", "nodes", n as u64);
    let mut comp_of = vec![u32::MAX; n];
    let mut comp_nodes: Vec<Vec<u32>> = Vec::new();
    let mut cyclic = Vec::new();
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.index.clear();
        s.index.resize(n, u32::MAX);
        s.low.clear();
        s.low.resize(n, 0);
        s.on_stack.clear();
        s.on_stack.resize(n, false);
        s.scc_stack.clear();
        s.stack.clear();
        let mut next_index = 0u32;
        for start in 0..n as u32 {
            if s.index[start as usize] != u32::MAX {
                continue;
            }
            s.stack.push((start, 0));
            s.index[start as usize] = next_index;
            s.low[start as usize] = next_index;
            next_index += 1;
            s.scc_stack.push(start);
            s.on_stack[start as usize] = true;
            while let Some(&mut (node, ref mut cursor)) = s.stack.last_mut() {
                let succs = csr.row(node as usize);
                if (*cursor as usize) < succs.len() {
                    let v = succs[*cursor as usize];
                    *cursor += 1;
                    if s.index[v as usize] == u32::MAX {
                        s.index[v as usize] = next_index;
                        s.low[v as usize] = next_index;
                        next_index += 1;
                        s.scc_stack.push(v);
                        s.on_stack[v as usize] = true;
                        s.stack.push((v, 0));
                    } else if s.on_stack[v as usize] {
                        s.low[node as usize] = s.low[node as usize].min(s.index[v as usize]);
                    }
                } else {
                    s.stack.pop();
                    if let Some(&(parent, _)) = s.stack.last() {
                        s.low[parent as usize] = s.low[parent as usize].min(s.low[node as usize]);
                    }
                    if s.low[node as usize] == s.index[node as usize] {
                        let id = comp_nodes.len() as u32;
                        let mut comp = Vec::new();
                        loop {
                            let v = s.scc_stack.pop().expect("tarjan stack underflow");
                            s.on_stack[v as usize] = false;
                            comp_of[v as usize] = id;
                            comp.push(v);
                            if v == node {
                                break;
                            }
                        }
                        cyclic.push(comp.len() > 1 || csr.has_edge(comp[0] as usize, comp[0]));
                        comp_nodes.push(comp);
                    }
                }
            }
        }
    });
    ebda_obs::counter_add("cdg.cycle.scc_runs", 1);
    ebda_obs::counter_add("cdg.cycle.scc_count", comp_nodes.len() as u64);
    ebda_obs::counter_max(
        "cdg.cycle.scc_max_size",
        comp_nodes.iter().map(Vec::len).max().unwrap_or(0) as u64,
    );
    SccInfo {
        comp_of,
        comp_nodes,
        cyclic,
    }
}

/// Localized cycle recheck: whether the subgraph induced by one
/// strongly connected component still has a cycle once the edges
/// marked in `skip` are removed. Only edges staying inside the
/// component are followed — a cycle of the reduced graph lies entirely
/// within one SCC of the base graph, so this restriction loses
/// nothing. Returns the verdict and the number of edges visited.
pub fn has_cycle_within(
    csr: &Csr,
    nodes: &[u32],
    comp_of: &[u32],
    comp: u32,
    skip: &EdgeMask,
) -> (bool, u64) {
    let mut edges_visited = 0u64;
    let cyclic = SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.color.resize(csr.node_count(), BLACK);
        for &v in nodes {
            s.color[v as usize] = WHITE;
        }
        s.stack.clear();
        for &start in nodes {
            if s.color[start as usize] != WHITE {
                continue;
            }
            s.color[start as usize] = GRAY;
            s.stack.push((start, 0));
            while let Some(&mut (node, ref mut next)) = s.stack.last_mut() {
                let u = node as usize;
                let succs = csr.row(u);
                if (*next as usize) < succs.len() {
                    let k = *next as usize;
                    let v = succs[k];
                    *next += 1;
                    if comp_of[v as usize] != comp || skip.get(csr.edge_base(u) + k) {
                        continue;
                    }
                    edges_visited += 1;
                    match s.color[v as usize] {
                        WHITE => {
                            s.color[v as usize] = GRAY;
                            s.stack.push((v, 0));
                        }
                        GRAY => {
                            s.stack.clear();
                            // Leave the touched colors consistent for
                            // the next borrow (they are re-seeded per
                            // call anyway).
                            return true;
                        }
                        _ => {}
                    }
                } else {
                    s.color[u] = BLACK;
                    s.stack.pop();
                }
            }
        }
        false
    });
    (cyclic, edges_visited)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_of(edges: &[Vec<u32>]) -> Csr {
        let mut row_start = vec![0u32];
        let mut col = Vec::new();
        for row in edges {
            col.extend_from_slice(row);
            row_start.push(col.len() as u32);
        }
        Csr::new(edges.len(), row_start, col)
    }

    #[test]
    fn matches_vec_backed_cycle_search() {
        let graphs: Vec<Vec<Vec<u32>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![0]],
            vec![vec![1, 2], vec![3], vec![3], vec![]],
            vec![vec![1], vec![2], vec![3], vec![1], vec![0]],
            vec![vec![1], vec![0], vec![3], vec![2]],
        ];
        for g in &graphs {
            assert_eq!(find_cycle(&csr_of(g)), crate::cycle::find_cycle(g), "{g:?}");
            assert_eq!(
                tarjan(&csr_of(g)).comp_nodes,
                crate::cycle::tarjan_scc(g),
                "{g:?}"
            );
        }
    }

    #[test]
    fn has_edge_bitset_and_search_agree() {
        let g = vec![vec![1, 3], vec![2], vec![0, 1, 3], vec![]];
        let csr = csr_of(&g);
        assert!(csr.has_bitset());
        for (u, succs) in g.iter().enumerate() {
            for v in 0..4u32 {
                assert_eq!(csr.has_edge(u, v), succs.contains(&v), "edge {u}->{v}");
                assert_eq!(csr.edge_index(u, v).is_some(), succs.contains(&v));
            }
        }
        assert_eq!(csr.edge_index(2, 1), Some(csr.edge_base(2) + 1));
    }

    #[test]
    fn topological_order_is_min_first() {
        // Diamond: among ready nodes the lowest index goes first.
        let g = vec![vec![1, 2], vec![3], vec![3], vec![]];
        assert_eq!(topological_order(&csr_of(&g)), Some(vec![0, 1, 2, 3]));
        assert_eq!(topological_order(&csr_of(&[vec![0u32]])), None);
    }

    #[test]
    fn edge_mask_masks_a_cycle_away() {
        // 0 -> 1 -> 2 -> 0 is one SCC; masking one edge breaks it.
        let g = vec![vec![1], vec![2], vec![0]];
        let csr = csr_of(&g);
        let scc = tarjan(&csr);
        assert_eq!(scc.comp_nodes.len(), 1);
        assert!(scc.cyclic[0]);
        let comp = scc.comp_of[0];
        let clear = EdgeMask::new(csr.edge_count());
        let (cyc, visited) = has_cycle_within(&csr, &scc.comp_nodes[0], &scc.comp_of, comp, &clear);
        assert!(cyc);
        assert!(visited >= 3);
        let mut mask = EdgeMask::new(csr.edge_count());
        assert!(mask.set(csr.edge_index(1, 2).unwrap()));
        assert!(!mask.set(csr.edge_index(1, 2).unwrap()), "idempotent");
        assert_eq!(mask.count(), 1);
        let (cyc, _) = has_cycle_within(&csr, &scc.comp_nodes[0], &scc.comp_of, comp, &mask);
        assert!(!cyc);
    }

    #[test]
    fn deep_chain_does_not_overflow_scratch_dfs() {
        let n = 100_000;
        let mut g: Vec<Vec<u32>> = (0..n - 1).map(|i| vec![i as u32 + 1]).collect();
        g.push(vec![]);
        let csr = csr_of(&g);
        assert!(find_cycle(&csr).is_none());
        assert_eq!(tarjan(&csr).comp_nodes.len(), n);
        assert_eq!(topological_order(&csr).unwrap().len(), n);
    }
}
