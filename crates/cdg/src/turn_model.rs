//! Brute-force turn-model verification — the methodology EbDa replaces.
//!
//! Section 2 of the paper argues that Dally-style verification via turn
//! models explodes combinatorially: prohibiting one turn from each abstract
//! cycle gives `4^c` combinations to check, where `c` is the number of
//! abstract cycles (2 per plane per VC pairing). This module implements that
//! brute-force checker so the scalability comparison can be *measured*:
//! enumerate combinations, build each CDG on a concrete mesh, test
//! acyclicity.
//!
//! For the 2D no-VC case it reproduces the classic Glass & Ni result the
//! paper cites: of the 16 combinations, 12 are deadlock-free and 3 are
//! unique up to symmetry (west-first, north-last, negative-first).

use crate::graph::Cdg;
use crate::topology::Topology;
use ebda_core::{Channel, Dimension, Direction, Turn, TurnSet};

/// The eight 90° turns of a 2D network, split into the two abstract cycles.
///
/// Clockwise abstract cycle: ES → SW → WN → NE; counterclockwise: EN → NW →
/// WS → SE. Returned as `(clockwise, counterclockwise)`.
pub fn abstract_cycles_2d() -> ([Turn; 4], [Turn; 4]) {
    let e = Channel::new(Dimension::X, Direction::Plus);
    let w = Channel::new(Dimension::X, Direction::Minus);
    let n = Channel::new(Dimension::Y, Direction::Plus);
    let s = Channel::new(Dimension::Y, Direction::Minus);
    (
        [
            Turn::new(e, s), // ES
            Turn::new(s, w), // SW
            Turn::new(w, n), // WN
            Turn::new(n, e), // NE
        ],
        [
            Turn::new(e, n), // EN
            Turn::new(n, w), // NW
            Turn::new(w, s), // WS
            Turn::new(s, e), // SE
        ],
    )
}

/// One prohibition combination: remove turn `cw` from the clockwise cycle
/// and `ccw` from the counterclockwise cycle, keep the other six turns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Combination {
    /// Index (0–3) of the prohibited clockwise turn.
    pub cw: usize,
    /// Index (0–3) of the prohibited counterclockwise turn.
    pub ccw: usize,
    /// The six allowed 90° turns.
    pub allowed: TurnSet,
}

/// Enumerates all `4 × 4 = 16` one-per-cycle prohibition combinations of the
/// 2D turn model.
pub fn combinations_2d() -> Vec<Combination> {
    let (cw, ccw) = abstract_cycles_2d();
    let mut out = Vec::with_capacity(16);
    for i in 0..4 {
        for j in 0..4 {
            let mut allowed = TurnSet::new();
            for (k, &t) in cw.iter().enumerate() {
                if k != i {
                    allowed.insert(t);
                }
            }
            for (k, &t) in ccw.iter().enumerate() {
                if k != j {
                    allowed.insert(t);
                }
            }
            out.push(Combination {
                cw: i,
                ccw: j,
                allowed,
            });
        }
    }
    out
}

/// Checks every 2D combination on a `radix × radix` mesh and returns the
/// deadlock-free ones. With `radix >= 4` this reproduces the Glass & Ni
/// count of 12 the paper quotes.
pub fn deadlock_free_combinations_2d(radix: usize) -> Vec<Combination> {
    let topo = Topology::mesh(&[radix, radix]);
    let universe: Vec<Channel> = vec![
        Channel::new(Dimension::X, Direction::Plus),
        Channel::new(Dimension::X, Direction::Minus),
        Channel::new(Dimension::Y, Direction::Plus),
        Channel::new(Dimension::Y, Direction::Minus),
    ];
    combinations_2d()
        .into_iter()
        .filter(|c| Cdg::from_turn_set(&topo, &[1, 1], &universe, &c.allowed).is_acyclic())
        .collect()
}

/// Counts the orbits of a set of turn combinations under the symmetry group
/// of the 2D mesh (the dihedral group acting on the four directions) — the
/// paper's "3 unique if symmetry is taken into account".
pub fn unique_up_to_symmetry(combos: &[Combination]) -> usize {
    let mut canonical: Vec<String> = Vec::new();
    for c in combos {
        let mut forms: Vec<String> = symmetries()
            .iter()
            .map(|s| {
                let mapped: TurnSet = c
                    .allowed
                    .iter()
                    .map(|t| Turn::new(apply(s, t.from), apply(s, t.to)))
                    .collect();
                mapped.to_string()
            })
            .collect();
        forms.sort();
        let canon = forms.remove(0);
        if !canonical.contains(&canon) {
            canonical.push(canon);
        }
    }
    canonical.len()
}

/// The 8 symmetries of the square as permutations of (dim, dir):
/// encoded as (swap_xy, flip_x, flip_y).
fn symmetries() -> Vec<(bool, bool, bool)> {
    let mut out = Vec::with_capacity(8);
    for swap in [false, true] {
        for fx in [false, true] {
            for fy in [false, true] {
                out.push((swap, fx, fy));
            }
        }
    }
    out
}

fn apply(s: &(bool, bool, bool), c: Channel) -> Channel {
    let (swap, fx, fy) = *s;
    let mut dim = c.dim;
    if swap {
        dim = if dim == Dimension::X {
            Dimension::Y
        } else {
            Dimension::X
        };
    }
    let flip = if dim == Dimension::X { fx } else { fy };
    let dir = if flip { c.dir.opposite() } else { c.dir };
    Channel::with_vc(dim, dir, c.vc)
}

/// Counts the orbits of a set of turn sets under the hyperoctahedral
/// symmetry group of the `n`-dimensional mesh (all dimension permutations
/// combined with per-dimension flips: `n! · 2^n` elements — 48 for 3D).
///
/// Generalizes [`unique_up_to_symmetry`] beyond 2D; feed it the allowed
/// turn sets of [`deadlock_free_combinations`]'s survivors to learn how
/// many structurally distinct turn models an enumeration found.
pub fn unique_turn_sets_up_to_symmetry(n: usize, sets: &[TurnSet]) -> usize {
    assert!(n <= 5, "group size n!*2^n explodes beyond 5 dimensions");
    // Enumerate group elements: a permutation of dims + a flip mask.
    let perms = permutations_of(n);
    let mut canonical = std::collections::BTreeSet::new();
    for ts in sets {
        let mut forms: Vec<String> = Vec::new();
        for perm in &perms {
            for mask in 0..(1u32 << n) {
                let mapped: TurnSet = ts
                    .iter()
                    .map(|t| Turn::new(apply_nd(perm, mask, t.from), apply_nd(perm, mask, t.to)))
                    .collect();
                forms.push(mapped.to_string());
            }
        }
        forms.sort();
        canonical.insert(forms.swap_remove(0));
    }
    canonical.len()
}

fn permutations_of(n: usize) -> Vec<Vec<usize>> {
    fn rec(n: usize, cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for v in 0..n {
            if !used[v] {
                used[v] = true;
                cur.push(v);
                rec(n, cur, used, out);
                cur.pop();
                used[v] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(n, &mut Vec::new(), &mut vec![false; n], &mut out);
    out
}

fn apply_nd(perm: &[usize], flip_mask: u32, c: Channel) -> Channel {
    let d = c.dim.index();
    let new_dim = perm[d];
    let dir = if flip_mask & (1 << d) != 0 {
        c.dir.opposite()
    } else {
        c.dir
    };
    Channel::with_vc(Dimension::new(new_dim as u8), dir, c.vc)
}

/// The abstract cycles of an `n`-dimensional single-VC network: for every
/// dimension pair, one clockwise and one counterclockwise cycle of four
/// turns. Returns `2·C(n,2)` cycles.
pub fn abstract_cycles(n: usize) -> Vec<[Turn; 4]> {
    let mut cycles = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let ap = Channel::new(Dimension::new(a as u8), Direction::Plus);
            let am = Channel::new(Dimension::new(a as u8), Direction::Minus);
            let bp = Channel::new(Dimension::new(b as u8), Direction::Plus);
            let bm = Channel::new(Dimension::new(b as u8), Direction::Minus);
            // Clockwise: a+ -> b- -> a- -> b+ -> a+.
            cycles.push([
                Turn::new(ap, bm),
                Turn::new(bm, am),
                Turn::new(am, bp),
                Turn::new(bp, ap),
            ]);
            // Counterclockwise: a+ -> b+ -> a- -> b- -> a+.
            cycles.push([
                Turn::new(ap, bp),
                Turn::new(bp, am),
                Turn::new(am, bm),
                Turn::new(bm, ap),
            ]);
        }
    }
    cycles
}

/// Exhaustive brute-force turn-model verification in `n` dimensions with a
/// single VC: for every way of prohibiting one turn per abstract cycle
/// (`4^(2·C(n,2))` combinations), build the CDG on a `radix^n` mesh and
/// test acyclicity. Returns the prohibition index vectors of the
/// deadlock-free combinations.
///
/// This is the computation whose growth Section 2 of the paper uses to
/// motivate EbDa: 16 checks in 2D, 4 096 in 3D, astronomically more with
/// VCs.
///
/// # Panics
///
/// Panics if the combination space exceeds `4^8` (n > 2 dimensions pairs
/// beyond 3D get prohibitively slow by design — that is the point).
pub fn deadlock_free_combinations(n: usize, radix: usize) -> Vec<Vec<usize>> {
    let cycles = abstract_cycles(n);
    assert!(
        cycles.len() <= 8,
        "combination space too large to enumerate"
    );
    let all_turns: Vec<Turn> = {
        let mut v = Vec::new();
        for c in &cycles {
            v.extend_from_slice(c);
        }
        v.sort_unstable();
        v.dedup();
        v
    };
    let topo = Topology::mesh(&vec![radix; n]);
    let mut universe = Vec::new();
    for d in 0..n {
        universe.push(Channel::new(Dimension::new(d as u8), Direction::Plus));
        universe.push(Channel::new(Dimension::new(d as u8), Direction::Minus));
    }
    let vcs = vec![1u8; n];
    let total = 4usize.pow(cycles.len() as u32);
    // Every combination checks independently; the index-order merge keeps
    // the result identical at every thread count.
    let combos: Vec<usize> = (0..total).collect();
    ebda_par::parallel_map(ebda_par::threads(), &combos, |_, &combo| {
        let mut prohibited: Vec<Turn> = Vec::with_capacity(cycles.len());
        let mut idx = Vec::with_capacity(cycles.len());
        let mut rest = combo;
        for c in &cycles {
            let k = rest % 4;
            rest /= 4;
            idx.push(k);
            prohibited.push(c[k]);
        }
        let allowed: TurnSet = all_turns
            .iter()
            .copied()
            .filter(|t| !prohibited.contains(t))
            .collect();
        Cdg::from_turn_set(&topo, &vcs, &universe, &allowed)
            .is_acyclic()
            .then_some(idx)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The abstract cycles of a 2D network with `q` virtual channels per
/// dimension: one clockwise and one counterclockwise cycle per `(X-VC,
/// Y-VC)` pairing — `2q²` cycles of four turns each (8 cycles for the
/// paper's "65,536 (4^8)" configuration).
pub fn abstract_cycles_2d_vc(q: u8) -> Vec<[Turn; 4]> {
    let mut cycles = Vec::new();
    for va in 1..=q {
        for vb in 1..=q {
            let xp = Channel::with_vc(Dimension::X, Direction::Plus, va);
            let xm = Channel::with_vc(Dimension::X, Direction::Minus, va);
            let yp = Channel::with_vc(Dimension::Y, Direction::Plus, vb);
            let ym = Channel::with_vc(Dimension::Y, Direction::Minus, vb);
            cycles.push([
                Turn::new(xp, ym),
                Turn::new(ym, xm),
                Turn::new(xm, yp),
                Turn::new(yp, xp),
            ]);
            cycles.push([
                Turn::new(xp, yp),
                Turn::new(yp, xm),
                Turn::new(xm, ym),
                Turn::new(ym, xp),
            ]);
        }
    }
    cycles
}

/// Samples the 2D-with-VCs turn-model space: draws `samples`
/// one-prohibition-per-cycle combinations (deterministically from `seed`)
/// and CDG-checks each on a `radix x radix` mesh. Returns
/// `(checked, deadlock_free)`.
///
/// The full space has `4^(2q²)` combinations — 65 536 for `q = 2`, the
/// number Section 2 quotes; exhaustive checking is possible but slow,
/// which is exactly the paper's point. Use `samples >= total` to force an
/// exhaustive sweep.
pub fn sample_deadlock_free_2d_vc(q: u8, radix: usize, samples: u64, seed: u64) -> (u64, u64) {
    let cycles = abstract_cycles_2d_vc(q);
    let all_turns: Vec<Turn> = {
        let mut v: Vec<Turn> = cycles.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let topo = Topology::mesh(&[radix, radix]);
    let mut universe = Vec::new();
    for vc in 1..=q {
        for dim in [Dimension::X, Dimension::Y] {
            universe.push(Channel::with_vc(dim, Direction::Plus, vc));
            universe.push(Channel::with_vc(dim, Direction::Minus, vc));
        }
    }
    let vcs = [q, q];
    let total: u128 = 1u128 << (2 * cycles.len() as u32);
    let exhaustive = u128::from(samples) >= total;
    let count = if exhaustive { total as u64 } else { samples };
    // Simple SplitMix64 for dependency-free deterministic sampling.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut free = 0u64;
    for i in 0..count {
        let combo = if exhaustive {
            i as u128
        } else {
            next() as u128 % total
        };
        let mut prohibited = Vec::with_capacity(cycles.len());
        let mut rest = combo;
        for c in &cycles {
            prohibited.push(c[(rest % 4) as usize]);
            rest /= 4;
        }
        let allowed: TurnSet = all_turns
            .iter()
            .copied()
            .filter(|t| !prohibited.contains(t))
            .collect();
        if Cdg::from_turn_set(&topo, &vcs, &universe, &allowed).is_acyclic() {
            free += 1;
        }
    }
    (count, free)
}

/// Number of abstract cycles to break in an `n`-dimensional network where
/// dimension `d` has `vcs[d]` virtual channels: two cycle orientations per
/// plane per VC pairing, `c = 2 · Σ_{i<j} vcs[i]·vcs[j]`.
///
/// ```
/// use ebda_cdg::turn_model::abstract_cycle_count;
/// assert_eq!(abstract_cycle_count(&[1, 1]), 2);     // 2D
/// assert_eq!(abstract_cycle_count(&[2, 2]), 8);     // 2D + 1 VC per dim
/// assert_eq!(abstract_cycle_count(&[1, 1, 1]), 6);  // 3D
/// assert_eq!(abstract_cycle_count(&[2, 2, 2]), 24); // 3D + 1 VC per dim
/// ```
pub fn abstract_cycle_count(vcs: &[u8]) -> u64 {
    let mut pairs = 0u64;
    for i in 0..vcs.len() {
        for j in (i + 1)..vcs.len() {
            pairs += vcs[i] as u64 * vcs[j] as u64;
        }
    }
    2 * pairs
}

/// Number of one-prohibition-per-cycle combinations a brute-force turn-model
/// verification must examine: `4^c` with `c = abstract_cycle_count(vcs)`.
///
/// The paper quotes 16 for 2D (`4^2`), 65 536 for 2D with one added VC per
/// dimension (`4^8`), and "more than 8 billion" for 3D with one added VC
/// per dimension (`4^24 ≈ 2.8·10^14`). Returns `None` when the count
/// overflows `u128`.
pub fn combination_count(vcs: &[u8]) -> Option<u128> {
    let c = abstract_cycle_count(vcs);
    if c >= 64 {
        return None;
    }
    Some(1u128 << (2 * c)) // 4^c = 2^(2c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_combinations() {
        let all = combinations_2d();
        assert_eq!(all.len(), 16);
        for c in &all {
            assert_eq!(c.allowed.len(), 6);
        }
    }

    #[test]
    fn glass_ni_counts_reproduced() {
        // The paper (citing Glass & Ni): of 16 combinations, 12 are
        // deadlock-free and 3 unique up to symmetry.
        let free = deadlock_free_combinations_2d(6);
        assert_eq!(free.len(), 12, "expected the classic count of 12");
        assert_eq!(unique_up_to_symmetry(&free), 3);
    }

    #[test]
    fn known_good_and_bad_combinations() {
        let free = deadlock_free_combinations_2d(6);
        let has = |cw: usize, ccw: usize| free.iter().any(|c| c.cw == cw && c.ccw == ccw);
        // West-first prohibits the turns into west: SW (cw 1) and NW (ccw 1).
        assert!(has(1, 1));
        // North-last prohibits the turns out of north: NE (cw 3), NW (ccw 1).
        assert!(has(3, 1));
        // Negative-first prohibits the positive-to-negative turns:
        // ES (cw 0) and NW (ccw 1).
        assert!(has(0, 1));
    }

    #[test]
    fn larger_mesh_agrees_with_smaller() {
        // The deadlock-free set must be stable across mesh sizes >= 4.
        let a: Vec<(usize, usize)> = deadlock_free_combinations_2d(4)
            .iter()
            .map(|c| (c.cw, c.ccw))
            .collect();
        let b: Vec<(usize, usize)> = deadlock_free_combinations_2d(7)
            .iter()
            .map(|c| (c.cw, c.ccw))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn generic_enumeration_matches_2d_specialization() {
        let generic = deadlock_free_combinations(2, 5);
        assert_eq!(generic.len(), 12, "generic 2D must reproduce Glass & Ni");
        // The classic three: west-first (SW=1, NW=1), north-last (NE=3,
        // NW=1), negative-first (ES=0, NW=1) — in (cw, ccw) index form.
        for expect in [[1usize, 1], [3, 1], [0, 1]] {
            assert!(generic.iter().any(|v| v == &expect), "missing {expect:?}");
        }
    }

    #[test]
    fn nd_symmetry_matches_2d_specialization() {
        let free = deadlock_free_combinations_2d(5);
        let sets: Vec<TurnSet> = free.iter().map(|c| c.allowed.clone()).collect();
        assert_eq!(unique_turn_sets_up_to_symmetry(2, &sets), 3);
    }

    #[test]
    fn three_d_orbit_count() {
        // Of the 176 deadlock-free 3D prohibition combinations, count the
        // structurally distinct turn models under the 48-element cube
        // symmetry group. The number (9) is this repo's measurement —
        // the 3D analogue of Glass & Ni's "3 unique" result.
        let cycles = abstract_cycles(3);
        let all_turns: Vec<Turn> = {
            let mut v: Vec<Turn> = cycles.iter().flatten().copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let sets: Vec<TurnSet> = deadlock_free_combinations(3, 3)
            .into_iter()
            .map(|idx| {
                let prohibited: Vec<Turn> =
                    idx.iter().zip(cycles.iter()).map(|(&k, c)| c[k]).collect();
                all_turns
                    .iter()
                    .copied()
                    .filter(|t| !prohibited.contains(t))
                    .collect()
            })
            .collect();
        assert_eq!(sets.len(), 176);
        let unique = unique_turn_sets_up_to_symmetry(3, &sets);
        assert!(unique > 3, "3D must have more classes than 2D");
        assert!(unique < 176, "symmetry must collapse the set");
        // Lock in the measured value so regressions are visible.
        assert_eq!(unique, 9, "measured orbit count changed");
    }

    #[test]
    fn three_d_enumeration_is_feasible_but_large() {
        // 4^6 = 4096 combinations — two orders of magnitude beyond 2D,
        // exactly the explosion Section 2 describes.
        let free = deadlock_free_combinations(3, 3);
        assert!(!free.is_empty());
        assert!(free.len() < 4096, "not every combination can be safe");
        // Negative-first-3D (prohibit the positive-to-negative turn of
        // every cw cycle and NW-analogue of every ccw cycle) must be free.
        assert!(
            free.iter().any(|v| v == &vec![0, 1, 0, 1, 0, 1]),
            "negative-first 3D missing from {} combos",
            free.len()
        );
        // And it must be consistent across mesh sizes.
        let free4 = deadlock_free_combinations(3, 4);
        assert_eq!(free.len(), free4.len());
    }

    #[test]
    fn vc_space_matches_paper_size_and_q1_reduces_to_glass_ni() {
        // q = 2: 8 cycles, 4^8 = 65,536 combinations — the paper's quote.
        assert_eq!(abstract_cycles_2d_vc(2).len(), 8);
        // q = 1 exhaustive sampling reduces to the 16-combination space.
        let (checked, free) = sample_deadlock_free_2d_vc(1, 5, u64::MAX, 1);
        assert_eq!(checked, 16);
        assert_eq!(free, 12);
    }

    #[test]
    fn vc_space_sampling_is_deterministic_and_sparse() {
        let a = sample_deadlock_free_2d_vc(2, 4, 128, 42);
        let b = sample_deadlock_free_2d_vc(2, 4, 128, 42);
        assert_eq!(a, b);
        assert_eq!(a.0, 128);
        // Random prohibition combinations are almost never jointly safe
        // with VCs — the deadlock-free fraction collapses from 12/16 at
        // q = 1 to (near) zero at q = 2, which is exactly why searching
        // this space by hand is hopeless (the paper's Section 2 argument).
        assert!(a.1 < 8, "expected a sparse safe set, found {}", a.1);
    }

    #[test]
    fn vc_space_contains_safe_combinations() {
        // The space is not empty: prohibiting the west-first pair (SW, NW)
        // in every (X-VC, Y-VC) plane is deadlock-free.
        let q = 2u8;
        let cycles = abstract_cycles_2d_vc(q);
        let all_turns: Vec<Turn> = {
            let mut v: Vec<Turn> = cycles.iter().flatten().copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        // cw cycles are at even indices (prohibit SW = index 1), ccw at
        // odd (prohibit NW = index 1).
        let prohibited: Vec<Turn> = cycles.iter().map(|c| c[1]).collect();
        let allowed: TurnSet = all_turns
            .iter()
            .copied()
            .filter(|t| !prohibited.contains(t))
            .collect();
        let topo = Topology::mesh(&[5, 5]);
        let mut universe = Vec::new();
        for vc in 1..=q {
            for dim in [Dimension::X, Dimension::Y] {
                universe.push(Channel::with_vc(dim, Direction::Plus, vc));
                universe.push(Channel::with_vc(dim, Direction::Minus, vc));
            }
        }
        let cdg = Cdg::from_turn_set(&topo, &[q, q], &universe, &allowed);
        assert!(cdg.is_acyclic(), "all-plane west-first must be safe");
    }

    #[test]
    fn combination_counts_match_paper_formulas() {
        assert_eq!(combination_count(&[1, 1]), Some(16));
        assert_eq!(combination_count(&[2, 2]), Some(65_536));
        assert_eq!(combination_count(&[1, 1, 1]), Some(4_096));
        let three_d_vc = combination_count(&[2, 2, 2]).unwrap();
        assert!(three_d_vc > 8_000_000_000u128, "paper: more than 8 billion");
        assert_eq!(three_d_vc, 1u128 << 48);
        // Very large spaces overflow gracefully.
        assert_eq!(combination_count(&[16, 16, 16, 16]), None);
    }
}
