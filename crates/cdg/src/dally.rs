//! Dally's verification criterion, applied to EbDa designs on concrete
//! topologies.
//!
//! Dally & Seitz (1987): a wormhole network is deadlock-free iff its channel
//! dependency graph is acyclic. EbDa *constructs* designs whose CDGs are
//! acyclic; this module closes the loop by checking that property
//! explicitly — the cross-validation the paper's theorems promise.

use crate::graph::{Cdg, ConcreteChannel};
use crate::topology::Topology;
use ebda_core::{extract_turns, Channel, PartitionSeq, Result, TurnSet};
use std::fmt;

/// The outcome of a Dally verification run.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Number of concrete channels (CDG nodes).
    pub channels: usize,
    /// Number of dependency edges.
    pub dependencies: usize,
    /// A witness cycle if the CDG is cyclic; `None` means deadlock-free.
    pub cycle: Option<Vec<ConcreteChannel>>,
}

impl VerificationReport {
    /// Returns `true` when the design passed (acyclic CDG).
    pub fn is_deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }

    /// Renders the witness cycle as the blocked-packet scenario it
    /// represents (see [`crate::witness::describe_scenario`]); `None` for
    /// deadlock-free designs.
    pub fn witness_scenario(&self) -> Option<String> {
        self.cycle
            .as_ref()
            .map(|c| crate::witness::describe_scenario(c))
    }

    /// Exports the witness cycle as machine-readable JSON (see
    /// [`crate::witness::cycle_json`]); `None` for deadlock-free designs.
    pub fn witness_json(&self) -> Option<String> {
        self.cycle.as_ref().map(|c| crate::witness::cycle_json(c))
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cycle {
            None => write!(
                f,
                "deadlock-free: {} channels, {} dependencies, acyclic CDG",
                self.channels, self.dependencies
            ),
            Some(cycle) => {
                write!(f, "DEADLOCK POSSIBLE: cycle of {} channels: ", cycle.len())?;
                for (i, c) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Verifies a class-level turn set on a topology with Dally's criterion.
///
/// `universe` lists the design's channel classes; `vcs[d]` is the number of
/// virtual channels instantiated along dimension `d` (it must cover every
/// VC number the universe mentions).
pub fn verify_turn_set(
    topo: &Topology,
    vcs: &[u8],
    universe: &[Channel],
    turns: &TurnSet,
) -> VerificationReport {
    let cdg = Cdg::from_turn_set(topo, vcs, universe, turns);
    VerificationReport {
        channels: cdg.node_count(),
        dependencies: cdg.edge_count(),
        cycle: cdg.find_cycle(),
    }
}

/// The CDG's deterministic channel ordering when it is acyclic — Dally's
/// positive evidence in exportable form (see [`Cdg::topological_order`]).
/// Returns `None` exactly when [`verify_turn_set`] reports a cycle.
pub fn channel_ordering(
    topo: &Topology,
    vcs: &[u8],
    universe: &[Channel],
    turns: &TurnSet,
) -> Option<Vec<ConcreteChannel>> {
    Cdg::from_turn_set(topo, vcs, universe, turns).topological_order()
}

/// Extracts the turns of an EbDa design (Theorems 1–3) and verifies the
/// result on a concrete topology.
///
/// The VC budget is inferred from the design (the maximum VC number used
/// per dimension).
///
/// ```
/// use ebda_cdg::{dally::verify_design, Topology};
/// use ebda_core::catalog;
/// let report = verify_design(&Topology::mesh(&[4, 4]), &catalog::fig7b_dyxy()).unwrap();
/// assert!(report.is_deadlock_free());
/// ```
///
/// # Errors
///
/// Returns an error when the design itself is invalid (Theorem 1 or
/// disjointness violations).
pub fn verify_design(topo: &Topology, seq: &PartitionSeq) -> Result<VerificationReport> {
    let extraction = extract_turns(seq)?;
    let universe = design_universe(seq);
    let vcs = infer_vcs(&universe, topo.dims());
    Ok(verify_turn_set(
        topo,
        &vcs,
        &universe,
        extraction.turn_set(),
    ))
}

/// The flat channel-class universe of a design.
pub fn design_universe(seq: &PartitionSeq) -> Vec<Channel> {
    seq.channels()
}

/// Infers the per-dimension VC budget from a channel universe (maximum VC
/// number mentioned per dimension, at least 1).
pub fn infer_vcs(universe: &[Channel], dims: usize) -> Vec<u8> {
    let mut vcs = vec![1u8; dims];
    for c in universe {
        if c.dim.index() < dims {
            vcs[c.dim.index()] = vcs[c.dim.index()].max(c.vc);
        }
    }
    vcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::catalog;

    #[test]
    fn channel_ordering_certifies_acyclic_cdgs() {
        // XY routing on a mesh: an ordering exists and every dependency
        // edge ascends in it.
        let topo = Topology::mesh(&[3, 3]);
        let seq = catalog::p1_xy();
        let extraction = extract_turns(&seq).unwrap();
        let universe = design_universe(&seq);
        let vcs = infer_vcs(&universe, topo.dims());
        let order = channel_ordering(&topo, &vcs, &universe, extraction.turn_set())
            .expect("XY routing has an acyclic CDG");
        let cdg = Cdg::from_turn_set(&topo, &vcs, &universe, extraction.turn_set());
        assert_eq!(order.len(), cdg.node_count());
        let rank: std::collections::HashMap<ConcreteChannel, usize> =
            order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (i, &a) in cdg.channels().iter().enumerate() {
            for &j in cdg.successors(i) {
                let b = cdg.channels()[j as usize];
                assert!(rank[&a] < rank[&b], "{a} must precede {b}");
            }
        }

        // The unrestricted relation is cyclic: no ordering exists.
        let universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        assert!(channel_ordering(&topo, &[1, 1], &universe, &turns).is_none());
    }

    #[test]
    fn every_catalog_design_is_deadlock_free_on_meshes() {
        for (name, seq) in catalog::all_designs() {
            let dims = design_universe(&seq)
                .iter()
                .map(|c| c.dim.index() + 1)
                .max()
                .unwrap();
            let radix = vec![4usize; dims];
            let topo = Topology::mesh(&radix);
            let report = verify_design(&topo, &seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "{name} must be deadlock-free on a mesh: {report}"
            );
            assert!(report.dependencies > 0, "{name} produced an empty CDG");
        }
    }

    #[test]
    fn negative_control_two_pair_partition_rejected() {
        let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(verify_design(&Topology::mesh(&[4, 4]), &seq).is_err());
    }

    #[test]
    fn negative_control_cyclic_turnset_detected() {
        // Hand-build the all-turns-allowed relation (valid partitions taken
        // separately, but we bypass extraction to model a broken router).
        let universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        let report = verify_turn_set(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(!report.is_deadlock_free());
        let text = report.to_string();
        assert!(text.contains("DEADLOCK"));
        // The witness must be a real cycle: consecutive links adjacent.
        let cycle = report.cycle.unwrap();
        for w in cycle.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(cycle.last().unwrap().to, cycle[0].from);
    }

    #[test]
    fn three_d_designs_verify_on_3d_meshes() {
        let topo = Topology::mesh(&[3, 3, 3]);
        for seq in [catalog::fig9b(), catalog::fig9c(), catalog::fig9a()] {
            let report = verify_design(&topo, &seq).unwrap();
            assert!(report.is_deadlock_free(), "{report}");
        }
    }

    #[test]
    fn partial_3d_design_verifies_on_partial_topology() {
        // Table 5's design on a vertically partially connected 3x3x2 mesh
        // with elevators at two positions.
        let topo = Topology::mesh(&[3, 3, 2])
            .with_partial_dim(ebda_core::Dimension::Z, [vec![0, 0], vec![2, 2]]);
        let report = verify_design(&topo, &catalog::table5_partial3d()).unwrap();
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    fn dateline_design_passes_the_class_level_check_on_tori() {
        // The coordinate-restricted classes break the VC-2 ring inside the
        // channel-class graph itself, so even the conservative class-level
        // verifier accepts the dateline design — while the plain (class-
        // unrestricted) torus design is rejected.
        for radix in [vec![4usize, 4], vec![5, 3], vec![3, 3, 3]] {
            let topo = Topology::torus(&radix);
            let seq = catalog::torus_dateline(&radix.to_vec());
            let report = verify_design(&topo, &seq).unwrap();
            assert!(report.is_deadlock_free(), "{radix:?}: {report}");
            assert!(report.dependencies > 0);
        }
        // Negative control: an unrestricted single-VC dimension-order
        // design is cyclic on the torus.
        let torus = Topology::torus(&[4, 4]);
        let plain = PartitionSeq::parse("X+ X- | Y+ Y-").unwrap();
        assert!(!verify_design(&torus, &plain).unwrap().is_deadlock_free());
    }

    #[test]
    fn vc_inference() {
        let u = design_universe(&catalog::fig9b());
        assert_eq!(infer_vcs(&u, 3), vec![2, 2, 4]);
    }

    #[test]
    fn algorithm1_outputs_verify_for_many_vc_mixes() {
        for x in 1..=3u8 {
            for y in 1..=3u8 {
                let seq = ebda_core::algorithm1::partition_network(&[x, y]).unwrap();
                let report = verify_design(&Topology::mesh(&[4, 4]), &seq).unwrap();
                assert!(
                    report.is_deadlock_free(),
                    "vcs ({x},{y}) produced a cyclic design: {report}"
                );
            }
        }
    }

    #[test]
    fn exceptional_partitionings_verify() {
        for seq in ebda_core::exceptional::exceptional_partitionings(2).unwrap() {
            let report = verify_design(&Topology::mesh(&[5, 5]), &seq).unwrap();
            assert!(report.is_deadlock_free(), "{seq}: {report}");
        }
        for seq in ebda_core::exceptional::exceptional_partitionings(3).unwrap() {
            let report = verify_design(&Topology::mesh(&[3, 3, 3]), &seq).unwrap();
            assert!(report.is_deadlock_free(), "{seq}: {report}");
        }
    }
}
