//! The channel dependency graph (CDG) of Dally & Seitz, instantiated on a
//! concrete topology.
//!
//! Nodes are *concrete channels* — one per (directed link, virtual channel).
//! An edge `a → b` means a packet holding `a` may request `b` next; Dally's
//! criterion says the network is deadlock-free iff this graph is acyclic.

use crate::csr::Csr;
use crate::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction, TurnSet};
use std::fmt;

/// A concrete channel instance: one virtual channel of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConcreteChannel {
    /// Source node of the link.
    pub from: NodeId,
    /// Destination node of the link.
    pub to: NodeId,
    /// The dimension the link runs along.
    pub dim: Dimension,
    /// The direction of travel.
    pub dir: Direction,
    /// The virtual channel (1-based).
    pub vc: u8,
}

impl ConcreteChannel {
    /// The class-level label of this channel — dimension, VC and
    /// direction (e.g. `X1+`), dropping the node coordinates. Coverage
    /// maps key CDG edges at this granularity so maps stay comparable
    /// across topology sizes.
    pub fn class_label(&self) -> String {
        format!("{}{}{}", self.dim, self.vc, self.dir)
    }
}

impl fmt::Display for ConcreteChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{} vc{} ({}→{})",
            self.dim, self.vc, self.dir, self.vc, self.from, self.to
        )
    }
}

/// A channel dependency graph over concrete channels, stored as a flat
/// [`Csr`] shared by Dally cycle detection, the Tarjan SCC pass, the
/// Duato escape check and the incremental engine.
///
/// **Edge-order invariant:** adjacency rows are laid out in channel
/// index order and every row's successor indices ascend — [`Cdg::build`]
/// enumerates candidate successors in channel-enumeration order, never
/// sorting after the fact. Cycle witnesses, topological orders and DOT
/// output are byte-stable because of this, and the incremental engine's
/// delta scans rely on it for binary-searchable rows.
#[derive(Debug, Clone)]
pub struct Cdg {
    channels: Vec<ConcreteChannel>,
    csr: Csr,
}

impl Cdg {
    /// Enumerates every concrete channel of `topo` given per-dimension VC
    /// counts (`vcs[d]` virtual channels along dimension `d`).
    ///
    /// # Panics
    ///
    /// Panics if `vcs.len()` differs from the topology's dimension count.
    pub fn channels_of(topo: &Topology, vcs: &[u8]) -> Vec<ConcreteChannel> {
        assert_eq!(vcs.len(), topo.dims(), "one VC count per dimension");
        let mut out = Vec::new();
        for (from, to, dim, dir) in topo.links() {
            for vc in 1..=vcs[dim.index()] {
                out.push(ConcreteChannel {
                    from,
                    to,
                    dim,
                    dir,
                    vc,
                });
            }
        }
        out
    }

    /// Builds the CDG induced by a class-level turn set.
    ///
    /// A concrete channel *matches* a channel class when dimension,
    /// direction and VC agree and the class's parity restriction holds at
    /// the link's source node. The dependency `a → b` is added when the
    /// links are adjacent (`a.to == b.from`) and the turn set allows some
    /// matched class of `a` to continue on some matched class of `b`
    /// (straight-through on the same class is always allowed).
    ///
    /// `universe` is the design's channel-class universe; concrete channels
    /// matching no class are unused by the routing function and get no
    /// edges.
    pub fn from_turn_set(
        topo: &Topology,
        vcs: &[u8],
        universe: &[Channel],
        turns: &TurnSet,
    ) -> Cdg {
        let channels = Cdg::channels_of(topo, vcs);
        let matches = Cdg::class_matches(topo, &channels, universe);
        Cdg::build(topo, channels, |ai, bi| {
            matches[ai].iter().any(|&ca| {
                matches[bi]
                    .iter()
                    .any(|&cb| turns.allows(universe[ca as usize], universe[cb as usize]))
            })
        })
    }

    /// Class matches per concrete channel: indices into `universe` whose
    /// dimension, direction, VC and parity restriction cover the
    /// channel's source node. Shared with the incremental engine
    /// ([`crate::incremental`]) so both sides apply the exact same
    /// dependency rule.
    pub(crate) fn class_matches(
        topo: &Topology,
        channels: &[ConcreteChannel],
        universe: &[Channel],
    ) -> Vec<Vec<u32>> {
        channels
            .iter()
            .map(|cc| {
                let coords = topo.coords(cc.from);
                universe
                    .iter()
                    .enumerate()
                    .filter(|(_, cl)| {
                        cl.dim == cc.dim
                            && cl.dir == cc.dir
                            && cl.vc == cc.vc
                            && cl.class.contains(&coords)
                    })
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect()
    }

    /// Channel indices grouped by source node via counting sort — the
    /// dense staging that replaced the `HashMap<NodeId, Vec<usize>>`
    /// build path. Returns `(starts, idx)` where
    /// `idx[starts[n]..starts[n + 1]]` lists the channels leaving node
    /// `n`, ascending (channels are enumerated node-major, so the
    /// stable fill preserves index order within each group).
    pub(crate) fn by_source_node(
        topo: &Topology,
        channels: &[ConcreteChannel],
    ) -> (Vec<u32>, Vec<u32>) {
        let nodes = topo.node_count();
        let mut starts = vec![0u32; nodes + 1];
        for c in channels {
            starts[c.from + 1] += 1;
        }
        for n in 0..nodes {
            starts[n + 1] += starts[n];
        }
        let mut idx = vec![0u32; channels.len()];
        let mut cursor: Vec<u32> = starts[..nodes].to_vec();
        for (i, c) in channels.iter().enumerate() {
            idx[cursor[c.from] as usize] = i as u32;
            cursor[c.from] += 1;
        }
        (starts, idx)
    }

    /// Builds the CDG from an arbitrary dependency rule over adjacent
    /// concrete channels. `rule(a, b)` is consulted only when
    /// `a.to == b.from` and `a` does not immediately re-enter its own link
    /// reversed (that degenerate hairpin is included — routing rules decide).
    pub fn from_rule<F>(topo: &Topology, vcs: &[u8], rule: F) -> Cdg
    where
        F: Fn(ConcreteChannel, ConcreteChannel) -> bool,
    {
        let channels = Cdg::channels_of(topo, vcs);
        let chans = channels.clone();
        Cdg::build(topo, channels, |ai, bi| rule(chans[ai], chans[bi]))
    }

    fn build<F>(topo: &Topology, channels: Vec<ConcreteChannel>, allowed: F) -> Cdg
    where
        F: Fn(usize, usize) -> bool,
    {
        let _span = ebda_obs::span("cdg.graph.build");
        // Dense per-node staging (no hashing); each group ascends, so
        // the CSR rows ascend too — the documented edge-order invariant.
        let (starts, idx) = Cdg::by_source_node(topo, &channels);
        let mut row_start = Vec::with_capacity(channels.len() + 1);
        row_start.push(0u32);
        let mut col: Vec<u32> = Vec::new();
        for (ai, a) in channels.iter().enumerate() {
            let group = &idx[starts[a.to] as usize..starts[a.to + 1] as usize];
            for &bi in group {
                if allowed(ai, bi as usize) {
                    col.push(bi);
                }
            }
            row_start.push(col.len() as u32);
        }
        let edge_count = col.len();
        ebda_obs::counter_add("cdg.graph.builds", 1);
        ebda_obs::counter_add("cdg.graph.nodes", channels.len() as u64);
        ebda_obs::counter_add("cdg.graph.edges", edge_count as u64);
        ebda_obs::prof::work("cdg/csr_build", "edges", edge_count as u64);
        let csr = Csr::new(channels.len(), row_start, col);
        Cdg { channels, csr }
    }

    /// The concrete channels (graph nodes).
    pub fn channels(&self) -> &[ConcreteChannel] {
        &self.channels
    }

    /// The flat CSR adjacency backing this graph.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of graph nodes.
    pub fn node_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// Successors of channel `i`, ascending.
    pub fn successors(&self, i: usize) -> &[u32] {
        self.csr.row(i)
    }

    /// Finds a dependency cycle, or `None` when the graph is acyclic —
    /// Dally's criterion. Same traversal and witness as
    /// [`crate::cycle::find_cycle`], over the shared CSR with the
    /// thread-local scratch buffer (no per-call allocation beyond the
    /// witness itself).
    pub fn find_cycle(&self) -> Option<Vec<ConcreteChannel>> {
        crate::csr::find_cycle(&self.csr).map(|idxs| {
            idxs.into_iter()
                .map(|i| self.channels[i as usize])
                .collect()
        })
    }

    /// Returns `true` when the dependency graph has no cycle.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A deterministic topological order of the concrete channels, or
    /// `None` when the graph is cyclic. Among ready nodes the lowest
    /// channel index goes first, so the order is byte-stable across runs.
    ///
    /// This is Dally's numbering argument made explicit: the returned
    /// list is a *channel-ordering certificate* — every dependency edge
    /// points from an earlier entry to a later one, which anyone can
    /// re-check without rebuilding the graph.
    pub fn topological_order(&self) -> Option<Vec<ConcreteChannel>> {
        crate::csr::topological_order(&self.csr).map(|order| {
            order
                .into_iter()
                .map(|i| self.channels[i as usize])
                .collect()
        })
    }

    /// The class-level edge labels present in the graph, deduplicated
    /// and sorted: `"X1+>Y1+"` records that some concrete `X1+` channel
    /// depends on some concrete `Y1+` channel. This is what the
    /// coverage subsystem records as the `cdg_edge` family — class
    /// granularity keeps maps comparable across topology sizes.
    pub fn class_edges(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for ai in 0..self.channels.len() {
            for &bi in self.csr.row(ai) {
                set.insert(format!(
                    "{}>{}",
                    self.channels[ai].class_label(),
                    self.channels[bi as usize].class_label()
                ));
            }
        }
        set.into_iter().collect()
    }

    /// Renders the concrete CDG in Graphviz DOT form (one node per
    /// concrete channel, one edge per dependency). Intended for small
    /// verification topologies; the output grows with links × VCs.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph cdg {\n  node [shape=ellipse];\n");
        for (i, c) in self.channels.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{c}\"];");
        }
        for i in 0..self.channels.len() {
            for &j in self.csr.row(i) {
                let _ = writeln!(out, "  n{i} -> n{j};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::{extract_turns, parse_channels, PartitionSeq};

    fn design_universe(seq: &PartitionSeq) -> Vec<Channel> {
        seq.channels()
    }

    #[test]
    fn channel_enumeration_counts() {
        let topo = Topology::mesh(&[3, 3]);
        let chans = Cdg::channels_of(&topo, &[1, 1]);
        assert_eq!(chans.len(), 24);
        let chans = Cdg::channels_of(&topo, &[2, 1]);
        assert_eq!(chans.len(), 36); // 12 X-links doubled + 12 Y-links
    }

    #[test]
    fn all_turns_allowed_is_cyclic() {
        // The unrestricted network: every turn allowed => cyclic CDG.
        let topo = Topology::mesh(&[3, 3]);
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        let cdg = Cdg::from_turn_set(&topo, &[1, 1], &universe, &turns);
        assert!(!cdg.is_acyclic());
        let cycle = cdg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn north_last_is_acyclic_on_meshes() {
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let universe = design_universe(&seq);
        for radix in [3usize, 4, 6] {
            let topo = Topology::mesh(&[radix, radix]);
            let cdg = Cdg::from_turn_set(&topo, &[1, 1], &universe, ex.turn_set());
            assert!(
                cdg.is_acyclic(),
                "north-last must be acyclic on {radix}x{radix}"
            );
        }
    }

    #[test]
    fn straight_rings_deadlock_on_torus_but_not_mesh() {
        // Even with *no* turns allowed, torus wraparound closes a ring.
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = TurnSet::new();
        let mesh = Cdg::from_turn_set(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(mesh.is_acyclic());
        let torus = Cdg::from_turn_set(&Topology::torus(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(!torus.is_acyclic());
    }

    #[test]
    fn parity_classes_bind_to_source_column() {
        // Odd-Even: acyclic on meshes of both parities.
        let seq = ebda_core::catalog::odd_even();
        let ex = extract_turns(&seq).unwrap();
        let universe = design_universe(&seq);
        for radix in [4usize, 5] {
            let topo = Topology::mesh(&[radix, radix]);
            let cdg = Cdg::from_turn_set(&topo, &[1, 1], &universe, ex.turn_set());
            assert!(
                cdg.is_acyclic(),
                "odd-even must be acyclic on {radix}x{radix}"
            );
        }
    }

    #[test]
    fn dot_export_counts_nodes_and_edges() {
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let topo = Topology::mesh(&[3, 3]);
        let cdg = Cdg::from_turn_set(&topo, &[1, 1], &design_universe(&seq), ex.turn_set());
        let dot = cdg.to_dot();
        assert!(dot.starts_with("digraph cdg"));
        assert_eq!(dot.matches("label=").count(), cdg.node_count());
        assert_eq!(dot.matches(" -> ").count(), cdg.edge_count());
    }

    #[test]
    fn class_edges_are_sorted_deduplicated_class_labels() {
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let topo = Topology::mesh(&[3, 3]);
        let cdg = Cdg::from_turn_set(&topo, &[1, 1], &design_universe(&seq), ex.turn_set());
        let edges = cdg.class_edges();
        assert!(!edges.is_empty());
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "labels sorted and deduplicated: {edges:?}"
        );
        // Straight-through along X+ exists on any 3x3 mesh route set
        // that allows X+ at all.
        assert!(edges.contains(&"X1+>X1+".to_string()), "{edges:?}");
        // Class labels carry no node coordinates.
        assert!(edges.iter().all(|e| !e.contains('(')), "{edges:?}");
    }

    #[test]
    fn edge_order_invariant_rows_ascend() {
        // The documented invariant: every adjacency row ascends (build
        // enumerates successors in channel order, no sort involved).
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        for topo in [Topology::mesh(&[4, 4]), Topology::torus(&[4, 4])] {
            let cdg = Cdg::from_turn_set(&topo, &[1, 1], &universe, &turns);
            assert!(cdg.edge_count() > 0);
            for i in 0..cdg.node_count() {
                let row = cdg.successors(i);
                assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i}: {row:?}");
            }
        }
    }

    #[test]
    fn from_rule_matches_manual_edges() {
        let topo = Topology::mesh(&[2, 2]);
        // Rule: only straight-through along X+.
        let cdg = Cdg::from_rule(&topo, &[1, 1], |a, b| {
            a.dim == Dimension::X
                && b.dim == Dimension::X
                && a.dir == Direction::Plus
                && b.dir == Direction::Plus
        });
        assert!(cdg.is_acyclic());
        // On a 2x2 mesh no X+ chain of length 2 exists: zero edges.
        assert_eq!(cdg.edge_count(), 0);
    }
}
