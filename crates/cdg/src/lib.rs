//! # ebda-cdg — channel dependency graphs and deadlock verification
//!
//! The verification substrate of the EbDa reproduction: it instantiates
//! designs from [`ebda_core`] on concrete topologies and checks them with
//! the two classic criteria the paper builds on and compares against:
//!
//! * **Dally & Seitz** ([`dally`]): build the channel dependency graph
//!   (CDG, [`graph`]) and test it for cycles ([`cycle`]). EbDa's claim is
//!   that every partitioning satisfying Theorems 1–3 yields an acyclic CDG;
//!   the tests in this crate confirm it for every design the paper names
//!   and for randomly generated ones.
//! * **Glass & Ni turn models** ([`turn_model`]): the brute-force
//!   one-prohibited-turn-per-abstract-cycle enumeration whose `4^c`
//!   explosion motivates EbDa (Section 2 of the paper).
//! * **Duato** ([`duato`]): the escape-channel conditions of the baseline
//!   theory for fully adaptive routing.
//!
//! ```
//! use ebda_cdg::{dally::verify_design, Topology};
//! use ebda_core::PartitionSeq;
//!
//! let west_first = PartitionSeq::parse("X- | X+ Y+ Y-")?;
//! let report = verify_design(&Topology::mesh(&[8, 8]), &west_first)?;
//! assert!(report.is_deadlock_free());
//! # Ok::<(), ebda_core::EbdaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod cycle;
pub mod dally;
pub mod duato;
pub mod graph;
pub mod incremental;
pub mod topology;
pub mod turn_model;
pub mod witness;

pub use csr::{Csr, EdgeMask, SccInfo};
pub use dally::{verify_design, verify_turn_set, VerificationReport};
pub use graph::{Cdg, ConcreteChannel};
pub use incremental::IncrementalVerifier;
pub use topology::{Connectivity, NodeId, Topology};
