//! Duato's verification criterion — the baseline theory EbDa is compared
//! against.
//!
//! Duato (1993): a fully adaptive routing is deadlock-free if there exists a
//! *connected*, *cycle-free* subset of channels (the escape channels);
//! packets may use the remaining (adaptive) channels with no restriction
//! because a blocked packet can always fall back to the escape subnetwork.
//!
//! This module checks the two structural conditions on a concrete topology:
//! the escape turn relation must have an acyclic CDG, and the escape
//! subnetwork alone must connect every source to every destination.

use crate::dally::verify_turn_set;
use crate::graph::ConcreteChannel;
use crate::topology::{NodeId, Topology};
use ebda_core::{Channel, TurnSet};
use std::collections::VecDeque;
use std::fmt;

/// The outcome of checking Duato's conditions.
#[derive(Debug, Clone)]
pub struct DuatoReport {
    /// Whether the escape CDG is acyclic.
    pub escape_acyclic: bool,
    /// A witness cycle in the escape CDG, if any.
    pub escape_cycle: Option<Vec<ConcreteChannel>>,
    /// Whether the escape subnetwork connects every ordered node pair.
    pub escape_connected: bool,
    /// A witness unreachable pair, if any.
    pub unreachable: Option<(NodeId, NodeId)>,
}

impl DuatoReport {
    /// Returns `true` when both of Duato's conditions hold.
    pub fn is_deadlock_free(&self) -> bool {
        self.escape_acyclic && self.escape_connected
    }

    /// The escape channel classes this report proves drainable, as
    /// sorted display labels: when the escape CDG is acyclic, Duato's
    /// drain argument applies to *every* escape class; when it is
    /// cyclic nothing is proven drained and the list is empty. Fed to
    /// the `escape_drain` coverage family.
    pub fn drained_classes(&self, escape_universe: &[Channel]) -> Vec<String> {
        if !self.escape_acyclic {
            return Vec::new();
        }
        let mut out: Vec<String> = escape_universe.iter().map(ToString::to_string).collect();
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for DuatoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_deadlock_free() {
            write!(
                f,
                "duato conditions hold: escape subnetwork acyclic and connected"
            )
        } else if !self.escape_acyclic {
            write!(f, "duato violation: escape subnetwork has a cyclic CDG")
        } else {
            let (a, b) = self.unreachable.unwrap_or((0, 0));
            write!(
                f,
                "duato violation: escape subnetwork cannot route {a} -> {b}"
            )
        }
    }
}

/// Checks Duato's conditions for an escape subnetwork described by a
/// class-level turn set over `escape_universe`.
///
/// Connectivity is checked with minimal-path reachability: from every
/// source, a BFS over (node, last escape class) states must reach every
/// other node while strictly decreasing distance (escape channels in
/// Duato-style designs are dimension-ordered and minimal).
pub fn verify_escape(
    topo: &Topology,
    vcs: &[u8],
    escape_universe: &[Channel],
    escape_turns: &TurnSet,
) -> DuatoReport {
    let dally = verify_turn_set(topo, vcs, escape_universe, escape_turns);
    let escape_acyclic = dally.is_deadlock_free();
    let (escape_connected, unreachable) = check_connectivity(topo, escape_universe, escape_turns);
    DuatoReport {
        escape_acyclic,
        escape_cycle: dally.cycle,
        escape_connected,
        unreachable,
    }
}

/// Checks Duato's conditions reusing an already-computed Dally report
/// for the *same* `(topology, vcs, universe, turns)` inputs.
///
/// The acyclicity half of [`verify_escape`] is literally
/// [`verify_turn_set`] on the same CDG, so a caller that has already run
/// Dally (the differential oracle's `evaluate`) can share that report
/// and pay only for the connectivity BFS — halving the CDG build and
/// cycle-search work per artifact. The returned report is byte-identical
/// to what [`verify_escape`] would produce.
pub fn verify_escape_given(
    dally: &crate::dally::VerificationReport,
    topo: &Topology,
    escape_universe: &[Channel],
    escape_turns: &TurnSet,
) -> DuatoReport {
    let (escape_connected, unreachable) = check_connectivity(topo, escape_universe, escape_turns);
    DuatoReport {
        escape_acyclic: dally.is_deadlock_free(),
        escape_cycle: dally.cycle.clone(),
        escape_connected,
        unreachable,
    }
}

/// BFS over `(node, last class)` states restricted to minimal moves.
fn check_connectivity(
    topo: &Topology,
    universe: &[Channel],
    turns: &TurnSet,
) -> (bool, Option<(NodeId, NodeId)>) {
    let n = topo.node_count();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            if !reachable(topo, universe, turns, src, dst) {
                return (false, Some((src, dst)));
            }
        }
    }
    (true, None)
}

fn reachable(
    topo: &Topology,
    universe: &[Channel],
    turns: &TurnSet,
    src: NodeId,
    dst: NodeId,
) -> bool {
    // State: (node, last class index or usize::MAX at injection).
    let k = universe.len();
    let mut seen = vec![false; topo.node_count() * (k + 1)];
    let state = |node: NodeId, last: usize| node * (k + 1) + last;
    let mut queue = VecDeque::new();
    queue.push_back((src, usize::MAX));
    seen[state(src, k)] = true;
    let dstc = topo.coords(dst);
    while let Some((node, last)) = queue.pop_front() {
        if node == dst {
            return true;
        }
        let coords = topo.coords(node);
        for (ci, &c) in universe.iter().enumerate() {
            // Minimal move: the hop must reduce distance to dst.
            let here = coords[c.dim.index()];
            let want = dstc[c.dim.index()];
            let towards = if topo.wraps(c.dim) {
                // On tori allow either rotation that reduces ring distance.
                let r = topo.radix()[c.dim.index()] as i64;
                let fwd = ((want - here) % r + r) % r;
                match c.dir {
                    ebda_core::Direction::Plus => fwd != 0 && fwd <= r / 2,
                    ebda_core::Direction::Minus => fwd != 0 && fwd > r / 2,
                }
            } else {
                match c.dir {
                    ebda_core::Direction::Plus => want > here,
                    ebda_core::Direction::Minus => want < here,
                }
            };
            if !towards || !c.class.contains(&coords) {
                continue;
            }
            let allowed = last == usize::MAX || turns.allows(universe[last], c);
            if !allowed {
                continue;
            }
            if let Some(next) = topo.neighbor(node, c.dim, c.dir) {
                let s = state(next, ci);
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back((next, ci));
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::{extract_turns, PartitionSeq};

    fn xy_escape() -> (Vec<Channel>, TurnSet) {
        // XY routing as the classic escape subnetwork.
        let seq = PartitionSeq::parse("X+ | X- | Y+ | Y-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let universe = crate::dally::design_universe(&seq);
        (universe, ex.into_turn_set())
    }

    #[test]
    fn xy_escape_satisfies_duato() {
        let (universe, turns) = xy_escape();
        let report = verify_escape(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    fn cyclic_escape_rejected() {
        // All-turns-allowed escape: connected but cyclic.
        let universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        let report = verify_escape(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(!report.is_deadlock_free());
        assert!(!report.escape_acyclic);
        assert!(report.escape_connected);
    }

    #[test]
    fn disconnected_escape_rejected() {
        // Escape with only X channels: acyclic but cannot route in Y.
        let universe = ebda_core::parse_channels("X+ X-").unwrap();
        let turns = TurnSet::new();
        let report = verify_escape(&Topology::mesh(&[3, 3]), &[1, 1], &universe, &turns);
        assert!(report.escape_acyclic);
        assert!(!report.escape_connected);
        assert!(report.unreachable.is_some());
    }

    #[test]
    fn drained_classes_cover_the_universe_only_when_acyclic() {
        let (universe, turns) = xy_escape();
        let report = verify_escape(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        let drained = report.drained_classes(&universe);
        assert_eq!(drained.len(), universe.len());
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "{drained:?}");

        let cyclic_universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
        let mut all = TurnSet::new();
        for &a in &cyclic_universe {
            for &b in &cyclic_universe {
                if a != b {
                    all.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        let cyclic = verify_escape(&Topology::mesh(&[4, 4]), &[1, 1], &cyclic_universe, &all);
        assert!(cyclic.drained_classes(&cyclic_universe).is_empty());
    }

    #[test]
    fn given_report_matches_standalone_check() {
        // Sharing the Dally report must not change any field of the
        // Duato verdict — cyclic and acyclic cases both.
        let cases = [xy_escape(), {
            let universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
            let mut turns = TurnSet::new();
            for &a in &universe {
                for &b in &universe {
                    if a != b {
                        turns.insert(ebda_core::Turn::new(a, b));
                    }
                }
            }
            (universe, turns)
        }];
        for (universe, turns) in cases {
            for topo in [Topology::mesh(&[4, 4]), Topology::torus(&[4, 4])] {
                let standalone = verify_escape(&topo, &[1, 1], &universe, &turns);
                let dally = verify_turn_set(&topo, &[1, 1], &universe, &turns);
                let shared = verify_escape_given(&dally, &topo, &universe, &turns);
                assert_eq!(standalone.escape_acyclic, shared.escape_acyclic);
                assert_eq!(standalone.escape_connected, shared.escape_connected);
                assert_eq!(standalone.unreachable, shared.unreachable);
                let a = standalone.escape_cycle.map(|c| format!("{c:?}"));
                let b = shared.escape_cycle.map(|c| format!("{c:?}"));
                assert_eq!(a, b, "witness cycles must be byte-identical");
            }
        }
    }

    #[test]
    fn west_first_escape_is_connected_and_acyclic() {
        let seq = PartitionSeq::parse("X- | X+ Y+ Y-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let universe = crate::dally::design_universe(&seq);
        let report = verify_escape(&Topology::mesh(&[5, 5]), &[1, 1], &universe, ex.turn_set());
        assert!(report.is_deadlock_free(), "{report}");
    }
}
