//! Cycle detection for dependency graphs: iterative three-colour DFS with a
//! cycle witness, and Tarjan's strongly connected components.

/// Finds a directed cycle in an adjacency-list graph, returning the node
/// indices along the cycle (first node repeated implicitly), or `None` for
/// acyclic graphs.
///
/// Runs an iterative DFS (no recursion — CDGs of large tori can be deep).
///
/// ```
/// use ebda_cdg::cycle::find_cycle;
/// let g = vec![vec![1], vec![2], vec![0u32]]; // 0 -> 1 -> 2 -> 0
/// let cycle = find_cycle(&g).unwrap();
/// assert_eq!(cycle.len(), 3);
/// assert!(find_cycle(&vec![vec![1], vec![2], vec![]]).is_none());
/// ```
pub fn find_cycle(edges: &[Vec<u32>]) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let _span = ebda_obs::span("cdg.cycle.find_cycle");
    // Edge visits are accumulated locally and flushed once: one telemetry
    // call per search, not per edge, keeps the hot loop clean.
    let mut edges_visited = 0u64;
    let n = edges.len();
    let mut color = vec![Color::White; n];
    let mut parent = vec![u32::MAX; n];
    // Stack holds (node, next-successor-index).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if color[start as usize] != Color::White {
            continue;
        }
        color[start as usize] = Color::Gray;
        stack.push((start, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = &edges[node as usize];
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                edges_visited += 1;
                match color[s as usize] {
                    Color::White => {
                        parent[s as usize] = node;
                        color[s as usize] = Color::Gray;
                        stack.push((s, 0));
                    }
                    Color::Gray => {
                        // Found a back edge node -> s: walk parents back.
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != s {
                            cur = parent[cur as usize];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        ebda_obs::counter_add("cdg.cycle.edges_visited", edges_visited);
                        ebda_obs::counter_add("cdg.cycle.cycles_found", 1);
                        ebda_obs::prof::work("cdg/cycle", "edges_visited", edges_visited);
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node as usize] = Color::Black;
                stack.pop();
            }
        }
    }
    ebda_obs::counter_add("cdg.cycle.edges_visited", edges_visited);
    ebda_obs::prof::work("cdg/cycle", "edges_visited", edges_visited);
    None
}

/// Tarjan's strongly connected components (iterative), in reverse
/// topological order. Singleton components without self-loops are included.
pub fn tarjan_scc(edges: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let _span = ebda_obs::span("cdg.cycle.tarjan_scc");
    let n = edges.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();
    // Explicit DFS state: (node, successor cursor).
    let mut work: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        work.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (node, ref mut cursor)) = work.last_mut() {
            let succs = &edges[node as usize];
            if *cursor < succs.len() {
                let s = succs[*cursor];
                *cursor += 1;
                if index[s as usize] == u32::MAX {
                    index[s as usize] = next_index;
                    low[s as usize] = next_index;
                    next_index += 1;
                    stack.push(s);
                    on_stack[s as usize] = true;
                    work.push((s, 0));
                } else if on_stack[s as usize] {
                    low[node as usize] = low[node as usize].min(index[s as usize]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent as usize] = low[parent as usize].min(low[node as usize]);
                }
                if low[node as usize] == index[node as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let v = stack.pop().expect("tarjan stack underflow");
                        on_stack[v as usize] = false;
                        comp.push(v);
                        if v == node {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    ebda_obs::counter_add("cdg.cycle.scc_runs", 1);
    ebda_obs::counter_add("cdg.cycle.scc_count", sccs.len() as u64);
    ebda_obs::counter_max(
        "cdg.cycle.scc_max_size",
        sccs.iter().map(Vec::len).max().unwrap_or(0) as u64,
    );
    sccs
}

/// Returns the strongly connected components with more than one node (or a
/// self-loop) — the deadlock-capable knots of a CDG.
pub fn cyclic_components(edges: &[Vec<u32>]) -> Vec<Vec<u32>> {
    tarjan_scc(edges)
        .into_iter()
        .filter(|comp| comp.len() > 1 || edges[comp[0] as usize].contains(&comp[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(find_cycle(&[]).is_none());
        assert!(find_cycle(&[vec![]]).is_none());
        // Self-loop is a cycle of length 1.
        let c = find_cycle(&[vec![0]]).unwrap();
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn dag_has_no_cycle() {
        // Diamond DAG.
        let g = vec![vec![1, 2], vec![3], vec![3], vec![]];
        assert!(find_cycle(&g).is_none());
        assert_eq!(tarjan_scc(&g).len(), 4);
        assert!(cyclic_components(&g).is_empty());
    }

    #[test]
    fn finds_embedded_cycle() {
        // 0 -> 1 -> 2 -> 3 -> 1 plus a tail 4 -> 0.
        let g = vec![vec![1], vec![2], vec![3], vec![1], vec![0]];
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 3);
        // The cycle must actually close in the graph.
        for w in cycle.windows(2) {
            assert!(g[w[0] as usize].contains(&w[1]));
        }
        assert!(g[*cycle.last().unwrap() as usize].contains(&cycle[0]));
    }

    #[test]
    fn tarjan_groups_knots() {
        let g = vec![vec![1], vec![2], vec![0], vec![2], vec![]];
        let knots = cyclic_components(&g);
        assert_eq!(knots.len(), 1);
        let mut knot = knots[0].clone();
        knot.sort_unstable();
        assert_eq!(knot, vec![0, 1, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node path: recursion would overflow; iteration must not.
        let n = 100_000;
        let mut g: Vec<Vec<u32>> = (0..n - 1).map(|i| vec![i as u32 + 1]).collect();
        g.push(vec![]);
        assert!(find_cycle(&g).is_none());
        assert_eq!(tarjan_scc(&g).len(), n);
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = vec![vec![1], vec![0], vec![3], vec![2]];
        assert_eq!(cyclic_components(&g).len(), 2);
        assert!(find_cycle(&g).is_some());
    }
}
