//! Seed-pinned property test: the incremental verifier must agree with a
//! from-scratch CDG rebuild after *every* delta of a random add-turn /
//! remove-turn / fail-link sequence — verdicts at each query, and the
//! witness cycle byte-for-byte after each apply.
//!
//! Three topology shapes cover the interesting bases: an all-turns 4x4
//! mesh (cyclic base, turn churn), the dateline 4x4 torus (acyclic base,
//! VC-split classes, wrap links), and Table 5's partially connected
//! 3x3x2 mesh (missing Z columns, so link and channel enumeration is
//! non-uniform). Cross-check mode is switched on, so every incremental
//! query also self-asserts against a full rebuild internally.

use ebda_cdg::dally::{design_universe, infer_vcs};
use ebda_cdg::{verify_turn_set, Cdg, IncrementalVerifier, Topology};
use ebda_core::{
    catalog, extract_turns, parse_channels, Channel, Dimension, Direction, Turn, TurnSet,
};
use ebda_obs::Rng64;

struct Scenario {
    name: &'static str,
    topo: Topology,
    vcs: Vec<u8>,
    universe: Vec<Channel>,
    turns: TurnSet,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // All class-to-class turns on a mesh: cyclic base.
    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let mut all = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            if a != b {
                all.insert(Turn::new(a, b));
            }
        }
    }
    out.push(Scenario {
        name: "mesh-all-turns",
        topo: Topology::mesh(&[4, 4]),
        vcs: vec![1, 1],
        universe,
        turns: all,
    });

    // The dateline torus: acyclic base with VC-split channel classes.
    let seq = catalog::torus_dateline(&[4, 4]);
    let universe = design_universe(&seq);
    let topo = Topology::torus(&[4, 4]);
    out.push(Scenario {
        name: "torus-dateline",
        vcs: infer_vcs(&universe, topo.dims()),
        topo,
        turns: extract_turns(&seq).unwrap().into_turn_set(),
        universe,
    });

    // Table 5's partially connected 3D mesh: elevators only at (0,0)
    // and (2,2), so the Z channel population is column-dependent.
    let seq = catalog::table5_partial3d();
    let universe = design_universe(&seq);
    let topo = Topology::mesh(&[3, 3, 2]).with_partial_dim(Dimension::Z, [vec![0, 0], vec![2, 2]]);
    out.push(Scenario {
        name: "partial-3d",
        vcs: infer_vcs(&universe, topo.dims()),
        topo,
        turns: extract_turns(&seq).unwrap().into_turn_set(),
        universe,
    });

    out
}

#[test]
fn random_delta_sequences_match_full_rebuild() {
    for s in scenarios() {
        for seed in 0..4u64 {
            run_sequence(&s, seed);
        }
    }
}

fn run_sequence(s: &Scenario, seed: u64) {
    let mut r = Rng64::new(seed * 1000 + 17);
    let mut v = IncrementalVerifier::new(
        s.topo.clone(),
        s.vcs.clone(),
        s.universe.clone(),
        s.turns.clone(),
    );
    v.set_cross_check(true);

    // Shadow state, rebuilt from scratch at every step.
    let mut topo = s.topo.clone();
    let mut turns = s.turns.clone();
    let mut fails = 0u32;
    let dims = topo.dims();
    let nodes = topo.node_count();
    let k = s.universe.len() as u64;

    for step in 0..40 {
        let ctx = format!("{} seed {seed} step {step}", s.name);
        match r.next_u64() % 3 {
            0 | 1 => {
                // Turn churn: a random (from, to) class pair, removed
                // when present, added when absent.
                let from = s.universe[(r.next_u64() % k) as usize];
                let to = s.universe[(r.next_u64() % k) as usize];
                if from == to {
                    continue;
                }
                let t = Turn::new(from, to);
                if turns.contains(t) {
                    let queried = v.query_remove_turn(t);
                    turns.remove(t);
                    let applied = v.apply_remove_turn(t);
                    assert_eq!(queried, applied, "{ctx}: remove query vs apply");
                } else {
                    let queried = v.query_add_turn(t);
                    turns.insert(t);
                    let applied = v.apply_add_turn(t);
                    assert_eq!(queried, applied, "{ctx}: add query vs apply");
                }
            }
            _ => {
                // Link failure (cumulative, capped so some topology is
                // left); a nonexistent link is a legal no-op delta.
                if fails >= 6 {
                    continue;
                }
                let node = (r.next_u64() % nodes as u64) as usize;
                let dim = Dimension::new((r.next_u64() % dims as u64) as u8);
                let dir = if r.next_u64().is_multiple_of(2) {
                    Direction::Plus
                } else {
                    Direction::Minus
                };
                fails += 1;
                let queried = v.query_fail_link(node, dim, dir);
                topo = topo.clone().with_failed_link(node, dim, dir);
                let applied = v.apply_fail_link(node, dim, dir);
                assert_eq!(queried, applied, "{ctx}: fail-link query vs apply");
            }
        }

        let full = verify_turn_set(&topo, &s.vcs, &s.universe, &turns);
        assert_eq!(
            v.is_acyclic(),
            full.is_deadlock_free(),
            "{ctx}: verdict drifted from full rebuild"
        );
        let full_cycle = Cdg::from_turn_set(&topo, &s.vcs, &s.universe, &turns).find_cycle();
        assert_eq!(
            format!("{:?}", v.find_cycle()),
            format!("{full_cycle:?}"),
            "{ctx}: witness cycle drifted from full rebuild"
        );
    }
}
