//! Property-based tests of the cycle-detection substrate and the CDG
//! construction.

use ebda_cdg::cycle::{cyclic_components, find_cycle, tarjan_scc};
use ebda_cdg::{Cdg, Topology};
use proptest::prelude::*;

/// A random directed graph as an adjacency list.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges).prop_map(move |edges| {
            let mut g = vec![Vec::new(); n];
            for (a, b) in edges {
                if !g[a as usize].contains(&b) {
                    g[a as usize].push(b);
                }
            }
            g
        })
    })
}

proptest! {
    /// find_cycle and Tarjan agree: a cycle exists iff some SCC is a knot.
    #[test]
    fn dfs_and_tarjan_agree(g in arb_graph(40, 120)) {
        let has_cycle = find_cycle(&g).is_some();
        let has_knot = !cyclic_components(&g).is_empty();
        prop_assert_eq!(has_cycle, has_knot);
    }

    /// Any witness returned by find_cycle is a genuine closed walk.
    #[test]
    fn witness_is_a_real_cycle(g in arb_graph(40, 120)) {
        if let Some(cycle) = find_cycle(&g) {
            prop_assert!(!cycle.is_empty());
            for w in cycle.windows(2) {
                prop_assert!(g[w[0] as usize].contains(&w[1]));
            }
            let last = *cycle.last().unwrap();
            prop_assert!(g[last as usize].contains(&cycle[0]));
        }
    }

    /// Tarjan SCCs partition the node set.
    #[test]
    fn sccs_partition_nodes(g in arb_graph(40, 120)) {
        let sccs = tarjan_scc(&g);
        let mut seen = vec![false; g.len()];
        for comp in &sccs {
            for &v in comp {
                prop_assert!(!seen[v as usize], "node in two SCCs");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Edges respecting a random topological order never form a cycle.
    #[test]
    fn dag_by_construction_is_acyclic(
        n in 2usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..100)
    ) {
        let mut g = vec![Vec::new(); n];
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a < b {
                // Forward edges only: a DAG by construction.
                let e = b as u32;
                if !g[a].contains(&e) {
                    g[a].push(e);
                }
            }
        }
        prop_assert!(find_cycle(&g).is_none());
        prop_assert!(cyclic_components(&g).is_empty());
    }

    /// CDG channel enumeration: node count equals links x VCs, and every
    /// channel's endpoints are adjacent in the topology.
    #[test]
    fn cdg_channel_enumeration_is_consistent(
        rx in 2usize..5, ry in 2usize..5, vx in 1u8..3, vy in 1u8..3
    ) {
        let topo = Topology::mesh(&[rx, ry]);
        let chans = Cdg::channels_of(&topo, &[vx, vy]);
        let expected: usize = topo
            .links()
            .iter()
            .map(|(_, _, dim, _)| match dim.index() {
                0 => vx as usize,
                _ => vy as usize,
            })
            .sum();
        prop_assert_eq!(chans.len(), expected);
        for c in chans {
            prop_assert_eq!(topo.neighbor(c.from, c.dim, c.dir), Some(c.to));
        }
    }
}
