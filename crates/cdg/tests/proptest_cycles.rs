//! Randomized tests of the cycle-detection substrate and the CDG
//! construction.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index for replay.

use ebda_cdg::cycle::{cyclic_components, find_cycle, tarjan_scc};
use ebda_cdg::{Cdg, Topology};
use ebda_obs::Rng64;

/// A random directed graph as an adjacency list with up to `max_nodes`
/// nodes and `max_edges` edge draws (duplicates discarded).
fn rand_graph(rng: &mut Rng64, max_nodes: usize, max_edges: usize) -> Vec<Vec<u32>> {
    let n = 1 + rng.gen_index(max_nodes - 1);
    let mut g = vec![Vec::new(); n];
    for _ in 0..rng.gen_index(max_edges) {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n) as u32;
        if !g[a].contains(&b) {
            g[a].push(b);
        }
    }
    g
}

/// find_cycle and Tarjan agree: a cycle exists iff some SCC is a knot.
#[test]
fn dfs_and_tarjan_agree() {
    let mut rng = Rng64::new(0xCD61);
    for case in 0..128 {
        let g = rand_graph(&mut rng, 40, 120);
        let has_cycle = find_cycle(&g).is_some();
        let has_knot = !cyclic_components(&g).is_empty();
        assert_eq!(has_cycle, has_knot, "case {case}");
    }
}

/// Any witness returned by find_cycle is a genuine closed walk.
#[test]
fn witness_is_a_real_cycle() {
    let mut rng = Rng64::new(0xCD62);
    for case in 0..128 {
        let g = rand_graph(&mut rng, 40, 120);
        if let Some(cycle) = find_cycle(&g) {
            assert!(!cycle.is_empty(), "case {case}");
            for w in cycle.windows(2) {
                assert!(g[w[0] as usize].contains(&w[1]), "case {case}");
            }
            let last = *cycle.last().unwrap();
            assert!(g[last as usize].contains(&cycle[0]), "case {case}");
        }
    }
}

/// Tarjan SCCs partition the node set.
#[test]
fn sccs_partition_nodes() {
    let mut rng = Rng64::new(0xCD63);
    for case in 0..128 {
        let g = rand_graph(&mut rng, 40, 120);
        let sccs = tarjan_scc(&g);
        let mut seen = vec![false; g.len()];
        for comp in &sccs {
            for &v in comp {
                assert!(!seen[v as usize], "case {case}: node in two SCCs");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}");
    }
}

/// Edges respecting a random topological order never form a cycle.
#[test]
fn dag_by_construction_is_acyclic() {
    let mut rng = Rng64::new(0xCD64);
    for case in 0..128 {
        let n = 2 + rng.gen_index(38);
        let mut g = vec![Vec::new(); n];
        for _ in 0..rng.gen_index(100) {
            let a = rng.gen_index(n);
            let b = rng.gen_index(n);
            if a < b {
                // Forward edges only: a DAG by construction.
                let e = b as u32;
                if !g[a].contains(&e) {
                    g[a].push(e);
                }
            }
        }
        assert!(find_cycle(&g).is_none(), "case {case}");
        assert!(cyclic_components(&g).is_empty(), "case {case}");
    }
}

/// CDG channel enumeration: node count equals links x VCs, and every
/// channel's endpoints are adjacent in the topology.
#[test]
fn cdg_channel_enumeration_is_consistent() {
    let mut rng = Rng64::new(0xCD65);
    for case in 0..48 {
        let rx = 2 + rng.gen_index(3);
        let ry = 2 + rng.gen_index(3);
        let vx = 1 + rng.gen_index(2) as u8;
        let vy = 1 + rng.gen_index(2) as u8;
        let topo = Topology::mesh(&[rx, ry]);
        let chans = Cdg::channels_of(&topo, &[vx, vy]);
        let expected: usize = topo
            .links()
            .iter()
            .map(|(_, _, dim, _)| match dim.index() {
                0 => vx as usize,
                _ => vy as usize,
            })
            .sum();
        assert_eq!(chans.len(), expected, "case {case} ({rx}x{ry})");
        for c in chans {
            assert_eq!(
                topo.neighbor(c.from, c.dim, c.dir),
                Some(c.to),
                "case {case}"
            );
        }
    }
}
