//! Systematic verification sweeps: every catalog design across mesh sizes
//! and shapes — deadlock freedom must be size-independent (the property
//! that makes small-instance checking meaningful).

use ebda_cdg::{verify_design, Topology};
use ebda_core::catalog;

#[test]
fn two_d_designs_are_stable_across_sizes() {
    let designs = [
        ("P1", catalog::p1_xy()),
        ("P2", catalog::p2_partially_adaptive()),
        ("P3", catalog::p3_west_first()),
        ("P4", catalog::p4_negative_first()),
        ("north-last", catalog::north_last()),
        ("fig7b", catalog::fig7b_dyxy()),
        ("fig7c", catalog::fig7c()),
        ("odd-even", catalog::odd_even()),
        ("hamiltonian", catalog::hamiltonian()),
    ];
    for radix in 3..=8usize {
        let topo = Topology::mesh(&[radix, radix]);
        for (name, seq) in &designs {
            let report = verify_design(&topo, seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "{name} cyclic on {radix}x{radix}: {report}"
            );
        }
    }
}

#[test]
fn rectangular_meshes_behave_like_square_ones() {
    for shape in [[3usize, 7], [7, 3], [2, 9], [5, 4]] {
        let topo = Topology::mesh(&shape);
        for (name, seq) in [
            ("west-first", catalog::p3_west_first()),
            ("odd-even", catalog::odd_even()),
            ("dyxy", catalog::fig7b_dyxy()),
        ] {
            let report = verify_design(&topo, &seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "{name} cyclic on {shape:?}: {report}"
            );
        }
    }
}

#[test]
fn three_d_designs_on_irregular_box_shapes() {
    for shape in [[2usize, 3, 4], [4, 2, 3], [3, 3, 2]] {
        let topo = Topology::mesh(&shape);
        for (name, seq) in [
            ("fig9b", catalog::fig9b()),
            ("fig9c", catalog::fig9c()),
            ("planar-adaptive", catalog::planar_adaptive(3)),
            ("table5", catalog::table5_partial3d()),
        ] {
            let report = verify_design(&topo, &seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "{name} cyclic on {shape:?}: {report}"
            );
        }
    }
}

#[test]
fn dependency_counts_grow_linearly_with_mesh_area() {
    // Turn-CDG dependencies of a fixed design scale with the link count,
    // sanity-checking the instantiation (no quadratic blowup, no loss).
    let seq = catalog::p3_west_first();
    let d4 = verify_design(&Topology::mesh(&[4, 4]), &seq)
        .unwrap()
        .dependencies as f64;
    let d8 = verify_design(&Topology::mesh(&[8, 8]), &seq)
        .unwrap()
        .dependencies as f64;
    let ratio = d8 / d4;
    assert!(
        (3.0..6.5).contains(&ratio),
        "8x8/4x4 dependency ratio {ratio} outside the linear-ish band"
    );
}

#[test]
fn witnesses_exist_exactly_when_cyclic() {
    use ebda_cdg::witness::shortest_cycle;
    use ebda_cdg::Cdg;
    use ebda_core::{parse_channels, Turn, TurnSet};

    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let mut all = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            if a != b && a.dim != b.dim {
                all.insert(Turn::new(a, b));
            }
        }
    }
    for radix in 3..=6usize {
        let topo = Topology::mesh(&[radix, radix]);
        let cyclic = Cdg::from_turn_set(&topo, &[1, 1], &universe, &all);
        let witness = shortest_cycle(&cyclic).expect("all-turns is cyclic");
        assert_eq!(witness.len(), 4, "unit square on {radix}x{radix}");
    }
}
