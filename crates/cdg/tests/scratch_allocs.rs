//! The CDG query paths must not allocate in steady state: `find_cycle`,
//! `topological_order` and the Tarjan SCC pass all run out of one
//! thread-local scratch arena, so after a warmup query on the largest
//! graph, repeated queries perform **zero** allocations.
//!
//! Everything lives in one `#[test]` so the scratch arena (and the
//! allocation counter — both thread-local) belong to a single thread.

use ebda_cdg::{Cdg, Topology};
use ebda_core::{parse_channels, Turn, TurnSet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's allocations, delegating to the system allocator.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to `System`; the only addition is a
// const-initialized thread-local counter bump, which cannot allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// This thread's allocations during `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

/// An acyclic CDG (XY-style turns) and a cyclic one (all turns), both on
/// the same universe so they share node counts.
fn graphs() -> (Cdg, Cdg) {
    let topo = Topology::mesh(&[6, 6]);
    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let mut xy = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            // X-then-Y only (same-class continuations are implicit):
            // classic XY routing, acyclic on a mesh.
            if a.dim.index() == 0 && b.dim.index() == 1 {
                xy.insert(Turn::new(a, b));
            }
        }
    }
    let mut all = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            if a != b {
                all.insert(Turn::new(a, b));
            }
        }
    }
    let acyclic = Cdg::from_turn_set(&topo, &[1, 1], &universe, &xy);
    let cyclic = Cdg::from_turn_set(&topo, &[1, 1], &universe, &all);
    (acyclic, cyclic)
}

#[test]
fn query_paths_reuse_one_scratch_buffer() {
    assert!(
        !ebda_obs::prof::enabled(),
        "this test needs the profiler off"
    );
    let (acyclic, cyclic) = graphs();
    assert!(acyclic.find_cycle().is_none());
    assert!(cyclic.find_cycle().is_some());

    // Warmup: sizes the thread-local scratch to the larger graph and
    // pays any one-time lazy init (interned names etc.).
    acyclic.find_cycle();
    cyclic.find_cycle();
    acyclic.topological_order();

    // Steady state, no-witness paths: the DFS walks the CSR with
    // recycled color/stack arrays and returns no value — zero allocs.
    let n = allocs_during(|| {
        for _ in 0..10 {
            assert!(acyclic.find_cycle().is_none());
        }
    });
    assert_eq!(n, 0, "acyclic find_cycle allocated {n} times");

    // Paths that return owned results (a topological order, a witness
    // cycle) allocate exactly the result, identically run after run.
    let a = allocs_during(|| {
        assert!(acyclic.topological_order().is_some());
        assert!(cyclic.find_cycle().is_some());
    });
    let b = allocs_during(|| {
        assert!(acyclic.topological_order().is_some());
        assert!(cyclic.find_cycle().is_some());
    });
    assert_eq!(a, b, "steady-state queries must allocate identically");
    assert!(a > 0, "sanity: the counter is live");
}
