//! An append-only JSONL **run ledger**: one record per verdict, written
//! by every oracle campaign, corpus campaign and CLI verification that
//! opts in with `--ledger FILE`.
//!
//! Each line is a self-contained JSON object carrying the run metadata
//! (source, git revision, seed), the verdict, the deterministic work
//! counters of the brute-force path (`gfp_sweeps`, `wait_pairs`) and —
//! embedded verbatim as an escaped string — the full provenance document
//! whose certificate or witness `ebda check-cert` re-validates without
//! re-running the prover.
//!
//! **Byte determinism.** Campaigns assemble records in stream/entry
//! order on the coordinating thread, so ledger bytes are identical at
//! any `--threads` value — the determinism tests diff the files
//! byte-for-byte. For that reason a record deliberately carries *no*
//! worker-thread stamp and no wall-clock field (the same policy as the
//! sweep CSVs and the profiler's `counters_text`): thread count and
//! timing are reported on stderr at append time and through the
//! `ebda_ledger_*` metric families instead.
//!
//! The ledger is strictly append-only: [`append`] assigns each new
//! record the next index after the records already on disk and never
//! rewrites an existing line. `ebda ledger <list|show|diff>` renders
//! ledgers, `ebda explain <hash>` narrates one record, and a `/ledger`
//! route on [`crate::http::MetricsServer`] serves the file registered
//! via [`set_global_path`] as a JSON array.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// On-disk ledger format version (the `format` field of every record).
pub const LEDGER_FORMAT: u64 = 1;

/// One verdict in the run ledger. See the module docs for the field
/// policy (no thread stamp, no wall clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRecord {
    /// Position in the ledger file, assigned by [`append`].
    pub index: u64,
    /// Producer: `"oracle"`, `"corpus"` or `"cli"`.
    pub source: String,
    /// Human-readable problem name (artifact summary, corpus entry name
    /// or the CLI design string).
    pub name: String,
    /// Short git revision of the producing build (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// Campaign seed; 0 for corpus and CLI records, which are
    /// content-addressed rather than seeded.
    pub seed: u64,
    /// `"deadlock-free"` or `"deadlocking"`.
    pub verdict: String,
    /// `"certificate"` for positive records, `"witness"` for negative.
    pub evidence: String,
    /// Canonical content hash of the (topology, turn-set) pair, in the
    /// corpus' 16-digit lowercase hex.
    pub hash: String,
    /// Greatest-fixed-point sweeps the brute path needed (deterministic
    /// work counter).
    pub gfp_sweeps: u64,
    /// Admissible hold/want pairs the brute path enumerated
    /// (deterministic work counter).
    pub wait_pairs: u64,
    /// [`crate::coverage::CoverageMap::digest`] of the coverage this
    /// verdict contributed, or `""` when the run did not track coverage.
    pub coverage: String,
    /// The single-line provenance JSON document, embedded verbatim.
    pub provenance: String,
}

impl LedgerRecord {
    /// Renders the record as its canonical single-line JSON form (no
    /// trailing newline). Key order is fixed; [`from_line`] round-trips
    /// byte-exactly.
    pub fn to_line(&self) -> String {
        format!(
            "{{\"format\":{},\"index\":{},\"source\":{},\"name\":{},\"git_rev\":{},\"seed\":{},\"verdict\":{},\"evidence\":{},\"hash\":{},\"gfp_sweeps\":{},\"wait_pairs\":{},\"coverage\":{},\"provenance\":{}}}",
            LEDGER_FORMAT,
            self.index,
            crate::json::escape(&self.source),
            crate::json::escape(&self.name),
            crate::json::escape(&self.git_rev),
            self.seed,
            crate::json::escape(&self.verdict),
            crate::json::escape(&self.evidence),
            crate::json::escape(&self.hash),
            self.gfp_sweeps,
            self.wait_pairs,
            crate::json::escape(&self.coverage),
            crate::json::escape(&self.provenance),
        )
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, or an
    /// unsupported `format` version.
    pub fn from_line(line: &str) -> Result<LedgerRecord, String> {
        let v = crate::json::Value::parse(line)?;
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field {key}"));
        let str_field = |key: &str| {
            field(key).and_then(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field {key} is not a string"))
            })
        };
        let u64_field = |key: &str| {
            field(key).and_then(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("field {key} is not a u64"))
            })
        };
        let format = u64_field("format")?;
        if format != LEDGER_FORMAT {
            return Err(format!(
                "unsupported ledger format {format} (this build reads {LEDGER_FORMAT})"
            ));
        }
        Ok(LedgerRecord {
            index: u64_field("index")?,
            source: str_field("source")?,
            name: str_field("name")?,
            git_rev: str_field("git_rev")?,
            seed: u64_field("seed")?,
            verdict: str_field("verdict")?,
            evidence: str_field("evidence")?,
            hash: str_field("hash")?,
            gfp_sweeps: u64_field("gfp_sweeps")?,
            wait_pairs: u64_field("wait_pairs")?,
            // Records from before the coverage subsystem carry no
            // coverage digest; default to empty rather than rejecting.
            coverage: match v.get("coverage") {
                Some(x) => x
                    .as_str()
                    .map(str::to_string)
                    .ok_or("field coverage is not a string")?,
                None => String::new(),
            },
            provenance: str_field("provenance")?,
        })
    }

    /// One-line human summary for `ebda ledger list` and the monitor's
    /// recent-verdicts section.
    pub fn summary(&self) -> String {
        format!(
            "#{:<4} {:<6} {:<13} {} {:<11} {}",
            self.index, self.source, self.verdict, self.hash, self.evidence, self.name
        )
    }
}

/// Appends `records` to the ledger at `path`, assigning each the next
/// free index (records already on disk keep theirs — the file is never
/// rewritten). Creates the file if needed. Returns the base index the
/// first new record received.
///
/// Bumps `ebda_ledger_appends_total` and, per record,
/// `ebda_ledger_records_total{source,verdict}`.
///
/// # Errors
///
/// Returns I/O failures and pre-existing malformed lines as strings.
pub fn append(path: &Path, records: &[LedgerRecord]) -> Result<u64, String> {
    let base = match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count() as u64,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = String::new();
    for (i, r) in records.iter().enumerate() {
        let mut stamped = r.clone();
        stamped.index = base + i as u64;
        out.push_str(&stamped.to_line());
        out.push('\n');
        crate::metrics::counter_add(
            "ebda_ledger_records_total",
            &[
                ("source", stamped.source.clone()),
                ("verdict", stamped.verdict.clone()),
            ],
            1,
        );
    }
    file.write_all(out.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    crate::metrics::counter_add("ebda_ledger_appends_total", &[], 1);
    crate::metrics::gauge_set(
        "ebda_ledger_last_index",
        &[],
        (base + records.len() as u64).saturating_sub(1) as f64,
    );
    Ok(base)
}

/// Reads and parses every record in the ledger at `path`.
///
/// # Errors
///
/// Returns I/O failures and the first malformed line (with its number).
pub fn read(path: &Path) -> Result<Vec<LedgerRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| LedgerRecord::from_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// The last `n` records of the ledger at `path` (fewer when the ledger
/// is shorter).
///
/// # Errors
///
/// See [`read`].
pub fn tail(path: &Path, n: usize) -> Result<Vec<LedgerRecord>, String> {
    let mut records = read(path)?;
    let keep = records.len().saturating_sub(n);
    Ok(records.split_off(keep))
}

/// Byte-compares two ledgers line by line. Returns `None` when they are
/// identical, otherwise a description of the first divergence — the
/// check the cross-thread determinism tests and the CI `ledger-smoke`
/// job run.
///
/// # Errors
///
/// Returns I/O failures as strings.
pub fn diff(a: &Path, b: &Path) -> Result<Option<String>, String> {
    let read_text =
        |p: &Path| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()));
    let (ta, tb) = (read_text(a)?, read_text(b)?);
    if ta == tb {
        return Ok(None);
    }
    let (mut la, mut lb) = (ta.lines(), tb.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (la.next(), lb.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (Some(x), Some(y)) => {
                return Ok(Some(format!(
                    "line {line} differs:\n  {}: {x}\n  {}: {y}",
                    a.display(),
                    b.display()
                )))
            }
            (Some(_), None) => {
                return Ok(Some(format!(
                    "{} has {line}+ lines, {} ends at {}",
                    a.display(),
                    b.display(),
                    line - 1
                )))
            }
            (None, Some(_)) => {
                return Ok(Some(format!(
                    "{} ends at {}, {} has {line}+ lines",
                    a.display(),
                    line - 1,
                    b.display()
                )))
            }
            (None, None) => return Ok(Some("files differ only in trailing bytes".to_string())),
        }
    }
}

/// Renders the ledger at `path` as a JSON array of record objects (the
/// `/ledger` endpoint body). The embedded provenance stays an escaped
/// string, exactly as on disk.
///
/// # Errors
///
/// Returns I/O failures and malformed lines as strings.
pub fn render_json(path: &Path) -> Result<String, String> {
    // Parse each line first so a corrupt ledger cannot serve broken JSON.
    let records = read(path)?;
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_line());
    }
    out.push_str("]\n");
    Ok(out)
}

static GLOBAL_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Registers (or clears, with `None`) the ledger file the `/ledger`
/// HTTP route serves. Process-global, like the metrics registry.
pub fn set_global_path(path: Option<PathBuf>) {
    *GLOBAL_PATH.lock().expect("ledger path lock") = path;
}

/// The ledger file registered for the `/ledger` route, if any.
pub fn global_path() -> Option<PathBuf> {
    GLOBAL_PATH.lock().expect("ledger path lock").clone()
}

/// The short git revision of the working tree, or `"unknown"` when git
/// or the checkout is unavailable. Stamped into ledger records and the
/// `ebda_build_info` gauge.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, verdict: &str) -> LedgerRecord {
        LedgerRecord {
            index: 0,
            source: "oracle".to_string(),
            name: name.to_string(),
            git_rev: "abc1234".to_string(),
            seed: 7,
            verdict: verdict.to_string(),
            evidence: if verdict == "deadlock-free" {
                "certificate"
            } else {
                "witness"
            }
            .to_string(),
            hash: "499b374294581b24".to_string(),
            gfp_sweeps: 3,
            wait_pairs: 68,
            coverage: "feedfacecafebeef".to_string(),
            provenance: "{\"format\":1,\"hash\":\"499b374294581b24\"}".to_string(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ebda-ledger-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_and_appends_in_index_order() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);

        let r = record("#0 partitioning on 3x3", "deadlock-free");
        let line = r.to_line();
        assert!(!line.contains('\n'), "records must be single-line");
        assert_eq!(LedgerRecord::from_line(&line).unwrap(), r);

        let base = append(
            &path,
            &[r.clone(), record("#1 random-turns", "deadlocking")],
        )
        .unwrap();
        assert_eq!(base, 0);
        let base = append(&path, &[record("#2 ordering", "deadlock-free")]).unwrap();
        assert_eq!(base, 2);

        let records = read(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "append assigns consecutive indices"
        );
        let last = tail(&path, 2).unwrap();
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].index, 1);

        let body = render_json(&path).unwrap();
        assert!(body.starts_with('[') && body.ends_with("]\n"));
        crate::json::Value::parse(&body).expect("endpoint body is valid JSON");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = temp_path("diff-a");
        let b = temp_path("diff-b");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        append(&a, &[record("same", "deadlock-free")]).unwrap();
        append(&b, &[record("same", "deadlock-free")]).unwrap();
        assert_eq!(diff(&a, &b).unwrap(), None);
        append(&b, &[record("extra", "deadlocking")]).unwrap();
        let d = diff(&a, &b).unwrap().expect("lengths differ");
        assert!(d.contains("ends at"), "{d}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn rejects_malformed_and_future_format_lines() {
        assert!(LedgerRecord::from_line("{\"format\":99}").is_err());
        assert!(LedgerRecord::from_line("not json").is_err());
        let mut r = record("x", "deadlocking");
        r.name = "quotes \" and \\ backslashes".to_string();
        let line = r.to_line();
        assert_eq!(LedgerRecord::from_line(&line).unwrap().name, r.name);
    }

    #[test]
    fn reads_pre_coverage_records_with_empty_digest() {
        // Ledgers written before the coverage subsystem lack the
        // `coverage` key; they must still parse (as digest "").
        let legacy = record("legacy", "deadlock-free")
            .to_line()
            .replace(",\"coverage\":\"feedfacecafebeef\"", "");
        let parsed = LedgerRecord::from_line(&legacy).expect("legacy line parses");
        assert_eq!(parsed.coverage, "");
    }
}
