//! Deterministic, mergeable **design-space coverage maps**.
//!
//! EbDa reduces deadlock freedom to a finite set of obligations —
//! partition-sequence memberships, admissible turn pairs, channel
//! dependency edges — and the campaigns in this workspace exercise
//! those obligations over thousands of generated and curated designs.
//! This module records *which* obligations and design-space regions a
//! run actually touched, the same instrument a fuzzer's edge map gives
//! a fuzzing campaign.
//!
//! A [`CoverageMap`] is a two-level table `family → point → hit count`.
//! The families the verdict paths and the simulator feed are listed in
//! [`FAMILIES`]:
//!
//! * `cdg_edge` — channel-dependency-graph edges visited, as
//!   class-level `FROM>TO` labels
//! * `turn_admitted` / `turn_denied` — turn pairs the routing relation
//!   admits or denies
//! * `obligation` — EbDa partition obligations discharged, keyed per
//!   theorem (`theorem1/p0`, `theorem3/p0>p2`, …)
//! * `escape_drain` — Duato escape channels proven drainable
//! * `gfp_pair` — hold/want channel-class pairs the brute greatest-
//!   fixed-point search enumerated
//! * `design_bin` — design-space bins over (dims, radix, wrap, vcs,
//!   turn-set density, verdict)
//! * `sim_event` — simulator event kinds observed during witness
//!   replays
//!
//! **Determinism.** Hit counts are additive, so [`CoverageMap::merge`]
//! is commutative and associative; campaigns still merge per-artifact
//! maps on the coordinating thread in stream/entry order (the same
//! policy as the run ledger) so the persisted file is byte-identical at
//! every `--threads` value. The canonical JSON form fixes key order via
//! `BTreeMap` and carries no wall-clock or thread stamp.
//!
//! Maps persist as single-line canonical JSON (format
//! [`COVERAGE_FORMAT`]) keyed by a caller-supplied identity — the
//! corpus content hash or the campaign seed — and summarize to a
//! 16-digit hex [`CoverageMap::digest`] embedded in ledger records.
//! `ebda coverage <report|diff|merge>` operates on the files, the
//! `ebda_coverage_*` metric families mirror the totals, and the
//! `/coverage` HTTP route serves the file registered via
//! [`set_global_path`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// On-disk coverage file format version (the `format` field).
pub const COVERAGE_FORMAT: u64 = 1;

/// The canonical coverage families, in canonical (sorted) order.
/// Producers may only feed families from this list; [`CoverageMap::record`]
/// panics on unknown names so typos fail loudly in tests rather than
/// silently fragmenting the map.
pub const FAMILIES: &[&str] = &[
    "cdg_edge",
    "design_bin",
    "escape_drain",
    "gfp_pair",
    "obligation",
    "sim_event",
    "turn_admitted",
    "turn_denied",
];

/// A mergeable coverage registry: `family → point → hit count`.
///
/// See the module docs for the family vocabulary and the determinism
/// contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoverageMap {
    key: String,
    families: BTreeMap<String, BTreeMap<String, u64>>,
}

impl CoverageMap {
    /// An empty map whose identity is `key` (corpus content hash,
    /// campaign seed tag, or `""` for scratch maps).
    pub fn new(key: impl Into<String>) -> CoverageMap {
        CoverageMap {
            key: key.into(),
            families: BTreeMap::new(),
        }
    }

    /// The identity this map is keyed by.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Replaces the map identity (used when a campaign key is only
    /// known after the per-artifact maps were produced).
    pub fn set_key(&mut self, key: impl Into<String>) {
        self.key = key.into();
    }

    /// Records one hit of `point` under `family`.
    ///
    /// # Panics
    ///
    /// Panics when `family` is not in [`FAMILIES`].
    pub fn record(&mut self, family: &str, point: impl Into<String>) {
        self.record_n(family, point, 1);
    }

    /// Records `n` hits of `point` under `family`.
    ///
    /// # Panics
    ///
    /// Panics when `family` is not in [`FAMILIES`].
    pub fn record_n(&mut self, family: &str, point: impl Into<String>, n: u64) {
        assert!(
            FAMILIES.contains(&family),
            "unknown coverage family {family:?}"
        );
        if n == 0 {
            return;
        }
        *self
            .families
            .entry(family.to_string())
            .or_default()
            .entry(point.into())
            .or_insert(0) += n;
    }

    /// Hit count of `point` under `family` (0 when never recorded).
    pub fn hits(&self, family: &str, point: &str) -> u64 {
        self.families
            .get(family)
            .and_then(|m| m.get(point))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct points covered under `family`.
    pub fn covered(&self, family: &str) -> usize {
        self.families.get(family).map_or(0, BTreeMap::len)
    }

    /// Total hits recorded under `family`.
    pub fn family_hits(&self, family: &str) -> u64 {
        self.families.get(family).map_or(0, |m| m.values().sum())
    }

    /// Total distinct points across all families.
    pub fn total_points(&self) -> usize {
        self.families.values().map(BTreeMap::len).sum()
    }

    /// The points covered under `family`, in canonical (sorted) order.
    pub fn points(&self, family: &str) -> impl Iterator<Item = (&str, u64)> {
        self.families
            .get(family)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// True when no hits have been recorded.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Adds every hit of `other` into `self`. Addition makes merge
    /// commutative and associative, which the determinism tests check.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (family, points) in &other.families {
            let dst = self.families.entry(family.clone()).or_default();
            for (point, n) in points {
                *dst.entry(point.clone()).or_insert(0) += n;
            }
        }
    }

    /// Canonical single-line JSON form (no trailing newline). Key order
    /// is fixed by the underlying `BTreeMap`s; [`CoverageMap::from_json`]
    /// round-trips byte-exactly.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"format\":{COVERAGE_FORMAT},\"key\":{},\"families\":{{",
            crate::json::escape(&self.key)
        );
        for (fi, (family, points)) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(family));
            out.push_str(":{");
            for (pi, (point, n)) in points.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push_str(&crate::json::escape(point));
                out.push(':');
                out.push_str(&n.to_string());
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses the canonical JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, or an
    /// unsupported `format` version.
    pub fn from_json(text: &str) -> Result<CoverageMap, String> {
        let v = crate::json::Value::parse(text)?;
        let format = v
            .get("format")
            .and_then(crate::json::Value::as_u64)
            .ok_or("missing field format")?;
        if format != COVERAGE_FORMAT {
            return Err(format!(
                "unsupported coverage format {format} (this build reads {COVERAGE_FORMAT})"
            ));
        }
        let key = v
            .get("key")
            .and_then(crate::json::Value::as_str)
            .ok_or("missing field key")?
            .to_string();
        let crate::json::Value::Obj(families) =
            v.get("families").ok_or("missing field families")?
        else {
            return Err("field families is not an object".to_string());
        };
        let mut map = CoverageMap::new(key);
        for (family, points) in families {
            if !FAMILIES.contains(&family.as_str()) {
                return Err(format!("unknown coverage family {family:?}"));
            }
            let crate::json::Value::Obj(points) = points else {
                return Err(format!("family {family} is not an object"));
            };
            for (point, n) in points {
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("hit count of {family}/{point} is not a u64"))?;
                map.record_n(family, point.clone(), n);
            }
        }
        Ok(map)
    }

    /// A 16-digit lowercase hex FNV-1a digest of the canonical JSON
    /// form — the short coverage identity embedded in ledger records.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().as_bytes()))
    }

    /// Writes the map to `path` as canonical JSON plus a trailing
    /// newline.
    ///
    /// # Errors
    ///
    /// Returns I/O failures as strings.
    pub fn write_file(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json() + "\n").map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Reads a map previously written with [`CoverageMap::write_file`].
    ///
    /// # Errors
    ///
    /// Returns I/O failures and parse errors as strings.
    pub fn read_file(path: &Path) -> Result<CoverageMap, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CoverageMap::from_json(text.trim_end()).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Compares two maps. Returns `None` when identical (key and all
    /// hit counts), otherwise a description of every family whose
    /// point sets or counts diverge — the check the cross-thread
    /// determinism tests and the CI coverage-smoke job run.
    pub fn diff(&self, other: &CoverageMap) -> Option<String> {
        if self == other {
            return None;
        }
        let mut lines = Vec::new();
        if self.key != other.key {
            lines.push(format!("key differs: {:?} vs {:?}", self.key, other.key));
        }
        for family in FAMILIES {
            let (a, b) = (self.covered(family), other.covered(family));
            let (ha, hb) = (self.family_hits(family), other.family_hits(family));
            if a != b || ha != hb {
                lines.push(format!(
                    "{family}: {a} points/{ha} hits vs {b} points/{hb} hits"
                ));
            } else if self.families.get(*family) != other.families.get(*family) {
                lines.push(format!("{family}: same totals, different points"));
            }
        }
        if lines.is_empty() {
            lines.push("maps differ in unknown field".to_string());
        }
        Some(lines.join("\n"))
    }

    /// Human-readable report: one line per family with distinct-point
    /// and hit totals, then the per-family point lists.
    pub fn report(&self) -> String {
        let mut out = format!(
            "coverage map key={} digest={}\n",
            if self.key.is_empty() { "-" } else { &self.key },
            self.digest()
        );
        out.push_str(&format!(
            "{:<14} {:>8} {:>12}\n",
            "family", "points", "hits"
        ));
        for family in FAMILIES {
            out.push_str(&format!(
                "{:<14} {:>8} {:>12}\n",
                family,
                self.covered(family),
                self.family_hits(family)
            ));
        }
        for family in FAMILIES {
            if self.covered(family) == 0 {
                continue;
            }
            out.push_str(&format!("\n[{family}]\n"));
            for (point, n) in self.points(family) {
                out.push_str(&format!("  {n:>8}  {point}\n"));
            }
        }
        out
    }

    /// Publishes the map totals to the global metrics registry:
    /// `ebda_coverage_points{family}` and `ebda_coverage_hits{family}`
    /// gauges per family, plus `ebda_coverage_points_total`. Gauges (not
    /// counters) so republishing an updated map is idempotent.
    pub fn publish_metrics(&self) {
        for family in FAMILIES {
            let labels = &[("family", (*family).to_string())];
            crate::metrics::gauge_set("ebda_coverage_points", labels, self.covered(family) as f64);
            crate::metrics::gauge_set(
                "ebda_coverage_hits",
                labels,
                self.family_hits(family) as f64,
            );
        }
        crate::metrics::gauge_set(
            "ebda_coverage_points_total",
            &[],
            self.total_points() as f64,
        );
    }
}

/// FNV-1a 64-bit. Duplicated from `ebda-core` because `ebda-obs` is the
/// bottom of the crate graph and cannot depend on it; the constants are
/// the standard ones, so digests agree with the corpus content hashes'
/// hash function.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A 16-digit lowercase hex FNV-1a digest of arbitrary bytes — used by
/// campaigns to derive a coverage-map identity from corpus entry hashes
/// without depending on `ebda-core`.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

static GLOBAL_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Registers (or clears, with `None`) the coverage file the `/coverage`
/// HTTP route serves. Process-global, like the metrics registry and the
/// ledger path.
pub fn set_global_path(path: Option<PathBuf>) {
    *GLOBAL_PATH.lock().expect("coverage path lock") = path;
}

/// The coverage file registered for the `/coverage` route, if any.
pub fn global_path() -> Option<PathBuf> {
    GLOBAL_PATH.lock().expect("coverage path lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: &str) -> CoverageMap {
        let mut m = CoverageMap::new(format!("test-{tag}"));
        m.record("cdg_edge", "X1+>Y1+");
        m.record_n("cdg_edge", "Y1+>X1-", 3);
        m.record("obligation", "theorem1/p0");
        m.record("design_bin", "d2.r4.w0.v1.tlo.free");
        m
    }

    #[test]
    fn records_merges_and_round_trips_canonically() {
        let m = sample("rt");
        assert_eq!(m.hits("cdg_edge", "Y1+>X1-"), 3);
        assert_eq!(m.covered("cdg_edge"), 2);
        assert_eq!(m.family_hits("cdg_edge"), 4);
        assert_eq!(m.total_points(), 4);
        assert_eq!(m.covered("gfp_pair"), 0);

        let json = m.to_json();
        assert!(!json.contains('\n'), "canonical form is single-line");
        let back = CoverageMap::from_json(&json).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.to_json(), json, "byte-exact round trip");
        assert_eq!(back.digest(), m.digest());

        let mut a = sample("rt");
        a.merge(&sample("rt"));
        assert_eq!(a.hits("cdg_edge", "Y1+>X1-"), 6);
        assert_eq!(a.total_points(), 4, "merge adds counts, not points");
    }

    #[test]
    fn merge_is_associative_on_disjoint_and_overlapping_maps() {
        let mut a = CoverageMap::new("k");
        a.record("cdg_edge", "X1+>Y1+");
        let mut b = CoverageMap::new("k");
        b.record("turn_admitted", "X1+>Y1-"); // disjoint family
        let mut c = CoverageMap::new("k");
        c.record("cdg_edge", "X1+>Y1+"); // overlaps a
        c.record_n("cdg_edge", "Y1->X1-", 2);

        // (a ∪ b) ∪ c  ==  a ∪ (b ∪ c), byte-for-byte.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.hits("cdg_edge", "X1+>Y1+"), 2);

        // Commutativity too: c ∪ a == a ∪ c.
        let mut ca = c.clone();
        ca.merge(&a);
        let mut ac = a.clone();
        ac.merge(&c);
        assert_eq!(ca.to_json(), ac.to_json());
    }

    #[test]
    fn diff_reports_divergent_families_and_none_on_equal() {
        let m = sample("diff");
        assert_eq!(m.diff(&sample("diff")), None);
        let mut other = sample("diff");
        other.record("gfp_pair", "X1+>Y1+");
        let d = m.diff(&other).expect("maps differ");
        assert!(d.contains("gfp_pair"), "{d}");
        let mut renamed = sample("diff");
        renamed.set_key("elsewhere");
        let d = m.diff(&renamed).expect("keys differ");
        assert!(d.contains("key differs"), "{d}");
    }

    #[test]
    fn file_round_trip_and_format_guard() {
        let mut path = std::env::temp_dir();
        path.push(format!("ebda-coverage-test-{}", std::process::id()));
        let m = sample("file");
        m.write_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back = CoverageMap::read_file(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);

        assert!(CoverageMap::from_json("{\"format\":99,\"key\":\"\",\"families\":{}}").is_err());
        assert!(CoverageMap::from_json("not json").is_err());
        assert!(
            CoverageMap::from_json("{\"format\":1,\"key\":\"\",\"families\":{\"bogus\":{}}}")
                .is_err(),
            "unknown family names are rejected"
        );
    }

    #[test]
    fn report_lists_every_family_and_panics_on_unknown() {
        let m = sample("report");
        let r = m.report();
        for family in FAMILIES {
            assert!(r.contains(family), "report missing {family}: {r}");
        }
        assert!(r.contains(&m.digest()));
        let caught = std::panic::catch_unwind(|| {
            let mut m = CoverageMap::new("");
            m.record("typo_family", "x");
        });
        assert!(caught.is_err(), "unknown family must panic");
    }
}
