//! Minimal hand-rolled JSON support: string escaping for the writers and
//! a small recursive-descent parser for round-trip tests.
//!
//! The build environment cannot fetch crates, so serde is off the table.
//! The subset implemented here is exactly what the exporters emit:
//! objects, arrays, strings (with `\"\\/bfnrt` and `\uXXXX` escapes),
//! numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` so it parses back as the same JSON number: finite
/// values use Rust's shortest round-trip display, non-finite values
/// (which JSON cannot represent) become `null`.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `1.0` displays as "1" — fine for JSON, already a number.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; our exports stay within 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted for deterministic comparisons.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes: Vec<char> = input.chars().collect();
        let mut p = Parser {
            chars: &bytes,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at char {}", p.pos));
        }
        Ok(v)
    }

    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(c)
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!("expected '{want}', got '{got}' at {}", self.pos));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{c}' at {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Obj(map)),
                c => return Err(format!("expected ',' or '}}', got '{c}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Arr(items)),
                c => return Err(format!("expected ',' or ']', got '{c}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{08}'),
                    'f' => out.push('\u{0C}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u digit '{d}'"))?;
                        }
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => return Err(format!("bad escape '\\{c}'")),
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(c))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn escape_round_trips_through_parser() {
        for s in [
            "simple",
            "with \"quotes\" and \\slashes\\",
            "control\u{01}\u{1f}chars",
            "newline\nand\ttab",
            "unicode: héllo ↔ 环",
        ] {
            let doc = format!("{{\"k\": {}}}", escape(s));
            let v = Value::parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("{} extra").is_err());
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse("{\"a\"}").is_err());
    }

    #[test]
    fn number_formatting_round_trips() {
        for x in [0.0, 1.0, -2.5, 1e-9, 12345.6789] {
            let v = Value::parse(&number(x)).unwrap();
            assert_eq!(v.as_f64(), Some(x));
        }
        assert_eq!(number(f64::NAN), "null");
    }
}
