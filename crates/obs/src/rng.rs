//! Deterministic pseudo-random numbers without external crates.
//!
//! The generator is splitmix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"), the same mixer the turn-model
//! sampler in `ebda-cdg` already hand-rolls. It passes BigCrush on its
//! own output and is more than adequate for traffic generation and
//! randomized tests; what matters here is that a seed fully determines
//! the stream on every platform.

/// A splitmix64 pseudo-random number generator.
///
/// ```
/// use ebda_obs::Rng64;
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The `index`-th value of the stream seeded with `seed`, computed in
    /// O(1) without advancing any state: `Rng64::nth(s, k)` equals the
    /// `k+1`-th call to `next_u64` on `Rng64::new(s)`.
    ///
    /// This is how order-independent work (parallel sweep replicates,
    /// batched oracle artifacts) derives per-item seeds from `(base, i)`
    /// so the result cannot depend on execution order.
    ///
    /// ```
    /// use ebda_obs::Rng64;
    /// let mut r = Rng64::new(42);
    /// r.next_u64();
    /// r.next_u64();
    /// assert_eq!(Rng64::nth(42, 2), r.next_u64());
    /// ```
    pub fn nth(seed: u64, index: u64) -> u64 {
        // splitmix64's state after k calls is seed + k * golden; the k-th
        // output is the mix of that state, so the whole stream is random
        // access.
        let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the modulo bias is at
    /// most 2⁻⁶⁴ per draw, far below anything our statistics can see.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range needs a non-empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform usize in `[0, n)`. `n` must be non-zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(0xEBDA);
        let mut b = Rng64::new(0xEBDA);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nth_is_random_access_into_the_stream() {
        let mut r = Rng64::new(0xEBDA);
        for k in 0..64 {
            assert_eq!(Rng64::nth(0xEBDA, k), r.next_u64(), "index {k}");
        }
        // Pinned values: the derivation is part of the sweep-replicate
        // determinism contract and must never drift.
        assert_eq!(Rng64::nth(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(Rng64::nth(0, 1), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = Rng64::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_index(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn bernoulli_rates_are_sane() {
        let mut r = Rng64::new(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(6);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
