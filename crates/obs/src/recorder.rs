//! The flight recorder: a bounded event log plus periodic time-series
//! samples, with JSON and CSV exporters.
//!
//! The recorder is deliberately passive — the simulator owns the
//! emission sites and hands events in; the recorder keeps the most
//! recent `capacity` of them (hardware-trace-buffer style) while
//! per-kind totals keep counting across evictions, so aggregate numbers
//! stay exact even when the ring wraps.

use crate::event::{Event, EventKind};
use crate::journey::{JourneyConfig, JourneyTracer};
use crate::json;
use crate::ring::RingBuffer;
use std::fmt::Write as _;

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Maximum events retained (older events are evicted, still counted).
    pub capacity: usize,
    /// Emit one [`Sample`] every this many cycles (0 disables sampling).
    pub sample_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 65_536,
            sample_every: 100,
        }
    }
}

/// One periodic snapshot of network state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulation cycle of the snapshot.
    pub cycle: u64,
    /// Packets injected but not yet ejected or dropped.
    pub in_flight: u64,
    /// Flits resident in buffers or on links.
    pub buffered_flits: u64,
    /// Output VCs that are owned but have zero credits.
    pub credit_stalls: u64,
    /// Per-output-channel buffer occupancy (flits), indexed by the
    /// simulator's output-slot numbering.
    pub occupancy: Vec<u32>,
}

impl Sample {
    /// Header for [`Sample::csv_row`] exports. `occupancy` is the full
    /// space-separated per-channel vector; the mean/max columns summarize
    /// it for quick plotting.
    pub const CSV_HEADER: &'static str =
        "cycle,in_flight,buffered_flits,credit_stalls,occupancy_mean,occupancy_max,occupancy";

    /// Serializes the sample as one CSV row matching [`Sample::CSV_HEADER`].
    pub fn csv_row(&self) -> String {
        let n = self.occupancy.len().max(1);
        let sum: u64 = self.occupancy.iter().map(|&x| x as u64).sum();
        let max = self.occupancy.iter().copied().max().unwrap_or(0);
        let vector = self
            .occupancy
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        crate::csv::row(&[
            self.cycle.to_string(),
            self.in_flight.to_string(),
            self.buffered_flits.to_string(),
            self.credit_stalls.to_string(),
            format!("{:.4}", sum as f64 / n as f64),
            max.to_string(),
            vector,
        ])
    }

    /// Serializes the sample as one JSON object.
    pub fn to_json(&self) -> String {
        let occ = self
            .occupancy
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"cycle\":{},\"in_flight\":{},\"buffered_flits\":{},\"credit_stalls\":{},\"occupancy\":[{}]}}",
            self.cycle, self.in_flight, self.buffered_flits, self.credit_stalls, occ
        )
    }
}

/// Bounded event recorder with periodic sampling.
#[derive(Debug, Clone)]
pub struct Recorder {
    config: RecorderConfig,
    events: RingBuffer<Event>,
    samples: Vec<Sample>,
    totals: [u64; EventKind::ALL.len()],
    journeys: Option<JourneyTracer>,
}

impl Recorder {
    /// Creates a recorder with the given configuration.
    pub fn new(config: RecorderConfig) -> Self {
        let capacity = config.capacity;
        Recorder {
            config,
            events: RingBuffer::new(capacity),
            samples: Vec::new(),
            totals: [0; EventKind::ALL.len()],
            journeys: None,
        }
    }

    /// Creates a recorder with [`RecorderConfig::default`].
    pub fn with_defaults() -> Self {
        Recorder::new(RecorderConfig::default())
    }

    /// Attaches a journey tracer: from now on every recorded event is
    /// also folded into per-packet journeys (see [`crate::journey`]).
    /// Unlike ring events, journeys of sampled packets are never
    /// evicted, so attach with a sane `sample_rate`/`max_journeys`.
    pub fn enable_journeys(&mut self, cfg: JourneyConfig) {
        self.journeys = Some(JourneyTracer::new(cfg));
    }

    /// The journey tracer, when [`Recorder::enable_journeys`] was called.
    pub fn journeys(&self) -> Option<&JourneyTracer> {
        self.journeys.as_ref()
    }

    /// Records one event.
    pub fn record(&mut self, event: Event) {
        if let Some(j) = self.journeys.as_mut() {
            j.observe(&event);
        }
        self.totals[Self::slot(event.kind())] += 1;
        self.events.push(event);
    }

    /// Whether a periodic sample is due at `cycle`.
    pub fn sample_due(&self, cycle: u64) -> bool {
        self.config.sample_every > 0 && cycle.is_multiple_of(self.config.sample_every)
    }

    /// Appends a periodic sample.
    pub fn push_sample(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The sampling cadence in cycles (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.config.sample_every
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Recorded samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of events currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Events evicted by ring wraparound (still included in totals).
    pub fn evicted(&self) -> u64 {
        self.events.dropped()
    }

    /// Total events ever recorded of `kind`, eviction-proof.
    pub fn total(&self, kind: EventKind) -> u64 {
        self.totals[Self::slot(kind)]
    }

    /// Total events ever recorded across all kinds.
    pub fn total_events(&self) -> u64 {
        self.totals.iter().sum()
    }

    fn slot(kind: EventKind) -> usize {
        EventKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }

    /// Exports the whole trace as one JSON document:
    /// `{"meta": .., "totals": .., "events": [..], "samples": [..]}`.
    pub fn write_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"meta\": {");
        let _ = write!(
            out,
            "\"capacity\": {}, \"sample_every\": {}, \"retained\": {}, \"evicted\": {}",
            self.events.capacity(),
            self.config.sample_every,
            self.retained(),
            self.evicted()
        );
        out.push_str("},\n  \"totals\": {");
        let totals = EventKind::ALL
            .iter()
            .map(|&k| format!("{}: {}", json::escape(k.name()), self.total(k)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&totals);
        out.push_str("},\n  \"events\": [\n");
        let events = self
            .events
            .iter()
            .map(|e| format!("    {}", e.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        out.push_str(&events);
        out.push_str("\n  ],\n  \"samples\": [\n");
        let samples = self
            .samples
            .iter()
            .map(|s| format!("    {}", s.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        out.push_str(&samples);
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Exports the retained events as CSV (header + one row per event).
    pub fn events_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.retained() + 1));
        out.push_str(Event::CSV_HEADER);
        out.push('\n');
        for e in self.events.iter() {
            out.push_str(&e.csv_row());
            out.push('\n');
        }
        out
    }

    /// Exports the samples as CSV (header + one row per sample).
    pub fn samples_csv(&self) -> String {
        let mut out = String::with_capacity(32 * (self.samples.len() + 1));
        out.push_str(Sample::CSV_HEADER);
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn inject(cycle: u64, pid: u64) -> Event {
        Event::Inject {
            cycle,
            pid,
            src: 0,
            dst: 1,
            len: 4,
        }
    }

    #[test]
    fn totals_survive_wraparound() {
        let mut r = Recorder::new(RecorderConfig {
            capacity: 4,
            sample_every: 0,
        });
        for i in 0..10 {
            r.record(inject(i, i));
        }
        assert_eq!(r.retained(), 4);
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.total(EventKind::Inject), 10);
        assert_eq!(r.total_events(), 10);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn json_export_parses_and_reports_counts() {
        let mut r = Recorder::new(RecorderConfig {
            capacity: 16,
            sample_every: 10,
        });
        r.record(inject(0, 0));
        r.record(Event::Eject {
            cycle: 7,
            pid: 0,
            node: 1,
            latency: 8,
        });
        r.push_sample(Sample {
            cycle: 10,
            in_flight: 1,
            buffered_flits: 4,
            credit_stalls: 0,
            occupancy: vec![0, 2, 2],
        });
        let doc = Value::parse(&r.write_json()).unwrap();
        assert_eq!(
            doc.get("meta").unwrap().get("retained").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            doc.get("totals").unwrap().get("inject").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(doc.get("events").unwrap().as_arr().unwrap().len(), 2);
        let samples = doc.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(
            samples[0].get("occupancy").unwrap().as_arr().unwrap().len(),
            3
        );
    }

    #[test]
    fn sampling_cadence() {
        let r = Recorder::new(RecorderConfig {
            capacity: 1,
            sample_every: 50,
        });
        assert!(r.sample_due(0));
        assert!(!r.sample_due(49));
        assert!(r.sample_due(100));
        let off = Recorder::new(RecorderConfig {
            capacity: 1,
            sample_every: 0,
        });
        assert!(!off.sample_due(0));
    }

    #[test]
    fn journey_tee_sees_every_recorded_event() {
        let mut r = Recorder::new(RecorderConfig {
            capacity: 2, // smaller than the event count: evictions must not affect journeys
            sample_every: 0,
        });
        r.enable_journeys(JourneyConfig::default());
        r.record(inject(0, 9));
        r.record(Event::VcAlloc {
            cycle: 1,
            pid: 9,
            node: 0,
            dim: 0,
            dir: '+',
            vc: 0,
        });
        r.record(Event::LinkTraverse {
            cycle: 2,
            pid: 9,
            flit: 0,
            from: 0,
            to: 1,
            dim: 0,
            dir: '+',
            vc: 0,
        });
        r.record(Event::Eject {
            cycle: 3,
            pid: 9,
            node: 1,
            latency: 3,
        });
        let t = r.journeys().expect("tracer attached");
        assert_eq!(t.journeys().len(), 1);
        assert_eq!(t.journeys()[0].hops.len(), 1);
        assert!(matches!(
            t.journeys()[0].end,
            crate::journey::JourneyEnd::Ejected { .. }
        ));
        assert!(r.evicted() > 0, "ring wrapped but the journey is whole");
    }

    #[test]
    fn journeys_absent_by_default() {
        assert!(Recorder::with_defaults().journeys().is_none());
    }

    #[test]
    fn csv_exports_have_aligned_columns() {
        let mut r = Recorder::with_defaults();
        r.record(inject(3, 1));
        r.push_sample(Sample {
            cycle: 0,
            in_flight: 0,
            buffered_flits: 0,
            credit_stalls: 0,
            occupancy: vec![1, 2, 3],
        });
        let events = r.events_csv();
        let mut lines = events.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(crate::csv::parse_line(line).unwrap().len(), header_cols);
        }
        let samples = r.samples_csv();
        let mut lines = samples.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(crate::csv::parse_line(line).unwrap().len(), header_cols);
        }
    }
}
