//! Process-wide timing spans and named counters.
//!
//! Instrumented code calls [`span`] / [`counter_add`] unconditionally;
//! when telemetry is disabled (the default) each call is a single
//! relaxed atomic load and an immediate return, so hot paths like the
//! CDG cycle search stay effectively free. Enabling telemetry (the
//! `--trace-out` / `EBDA_TRACE` flags do this) turns the same calls
//! into registry updates behind one mutex.
//!
//! Names follow `crate.module.thing`, e.g.
//! `core.algorithm1.partitions_created` or `cdg.cycle.edges_visited`;
//! docs/OBSERVABILITY.md lists the full vocabulary.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    maxima: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStat>,
}

/// Aggregate statistics of one named span.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed executions.
    pub count: u64,
    /// Total nanoseconds across executions.
    pub total_ns: u64,
    /// Longest single execution in nanoseconds.
    pub max_ns: u64,
}

/// Globally enables or disables telemetry collection.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the named counter (no-op when disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg.counters.entry(name).or_insert(0) += delta;
}

/// Raises the named high-water mark to `value` if larger (no-op when
/// disabled).
pub fn counter_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    let slot = reg.maxima.entry(name).or_insert(0);
    *slot = (*slot).max(value);
}

/// An RAII timing span: construction notes the start time, drop folds
/// the elapsed nanoseconds into the named span's statistics.
#[must_use = "a span measures the scope it lives in"]
#[derive(Debug)]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

/// Starts a timing span named `name`. When telemetry is disabled the
/// span is disarmed and drop does nothing.
pub fn span(name: &'static str) -> Span {
    Span {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start)) = self.armed.take() else {
            return;
        };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        {
            let mut reg = registry().lock().expect("telemetry registry poisoned");
            let stat = reg.spans.entry(name).or_default();
            stat.count += 1;
            stat.total_ns += ns;
            stat.max_ns = stat.max_ns.max(ns);
        }
        // Feed the live metrics layer too, so span timing distributions
        // (not just totals) show up on /metrics.
        crate::metrics::observe("ebda_span_duration_ns", &[("span", name.to_string())], ns);
    }
}

/// A point-in-time copy of every counter, high-water mark and span.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// High-water marks, sorted by name.
    pub maxima: Vec<(String, u64)>,
    /// Span statistics, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("    {}: {v}", crate::json::escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        let maxima = self
            .maxima
            .iter()
            .map(|(k, v)| format!("    {}: {v}", crate::json::escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                format!(
                    "    {}: {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    crate::json::escape(k),
                    s.count,
                    s.total_ns,
                    s.max_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"counters\": {{\n{counters}\n  }},\n  \"maxima\": {{\n{maxima}\n  }},\n  \"spans\": {{\n{spans}\n  }}\n}}\n"
        )
    }
}

/// Copies the current telemetry state.
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry().lock().expect("telemetry registry poisoned");
    TelemetrySnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        maxima: reg
            .maxima
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        spans: reg
            .spans
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
    }
}

/// Clears all counters, maxima and spans (telemetry stays enabled or
/// disabled as it was).
pub fn reset() {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg = Registry::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn disabled_then_enabled_lifecycle() {
        reset();
        set_enabled(false);
        counter_add("test.disabled", 5);
        counter_max("test.disabled_max", 5);
        {
            let _s = span("test.disabled_span");
        }
        let snap = snapshot();
        assert!(snap.counters.iter().all(|(k, _)| !k.starts_with("test.")));

        set_enabled(true);
        counter_add("test.counter", 2);
        counter_add("test.counter", 3);
        counter_max("test.max", 7);
        counter_max("test.max", 4);
        {
            let _s = span("test.span");
        }
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.counters.contains(&("test.counter".to_string(), 5)));
        assert!(snap.maxima.contains(&("test.max".to_string(), 7)));
        let (_, stat) = snap
            .spans
            .iter()
            .find(|(k, _)| k == "test.span")
            .expect("span recorded");
        assert_eq!(stat.count, 1);
        assert!(stat.total_ns >= stat.max_ns);

        let doc = crate::json::Value::parse(&snap.to_json()).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("test.counter")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        reset();
    }
}
