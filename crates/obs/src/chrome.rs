//! Chrome Trace Event Format export for packet journeys.
//!
//! The output is the JSON-object form of the Trace Event Format —
//! `{"traceEvents": [...]}` — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Mapping:
//!
//! * one **process** per simulation run (`pid` = run index, named by the
//!   run label), so a sweep can merge many runs into one file;
//! * one **thread** per router (`tid` = node + 1) plus a watchdog track
//!   at `tid` 0;
//! * a **complete event** (`ph: "X"`) per span: the injection wait on
//!   the source router's track, then one channel-hold slice per hop on
//!   the holding router's track;
//! * **flow events** (`ph: "s"/"t"/"f"`) chaining injection → hops →
//!   ejection, so Perfetto draws the packet's causal arrow across
//!   routers;
//! * **instant events** (`ph: "i"`) for ejections, drops, watchdog
//!   trips and diagnosed wait-for edges.
//!
//! One simulation cycle maps to one microsecond of trace time (`ts` is
//! in µs), so cycle numbers read directly off the Perfetto ruler.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::journey::{Journey, JourneyEnd, JourneyTracer};
use crate::json::{self, Value};

/// Builds a multi-run Chrome trace from journey tracers.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
    runs: usize,
    next_flow: u64,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of runs added so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Appends one run's journeys as a new trace process named `label`.
    pub fn add_run(&mut self, label: &str, tracer: &JourneyTracer) {
        let pid = self.runs;
        self.runs += 1;
        let horizon = tracer.last_cycle();

        self.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json::escape(label)
        ));

        let mut tids: BTreeSet<usize> = BTreeSet::new();
        for j in tracer.journeys() {
            tids.insert(j.src + 1);
            if let JourneyEnd::Ejected { .. } = j.end {
                tids.insert(j.dst + 1);
            }
            for h in &j.hops {
                tids.insert(h.channel.node + 1);
            }
        }
        let watchdog_track = !tracer.trips().is_empty() || !tracer.wait_notes().is_empty();
        if watchdog_track {
            self.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"watchdog\"}}}}"
            ));
        }
        for tid in tids {
            self.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"router {}\"}}}}",
                tid - 1
            ));
        }

        for j in tracer.journeys() {
            self.add_journey(pid, j, horizon);
        }

        for t in tracer.trips() {
            self.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"watchdog trip\",\"args\":{{\"blocked\":{}}}}}",
                t.cycle, t.blocked
            ));
        }
        for n in tracer.wait_notes() {
            self.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":{},\"args\":{{\"waiter\":{},\"waits_on\":{}}}}}",
                n.cycle,
                json::escape(&format!("wait: {}", n.label)),
                n.waiter,
                n.waits_on
            ));
        }
    }

    fn add_journey(&mut self, pid: usize, j: &Journey, horizon: u64) {
        let end_cycle = j.end_cycle(horizon);
        let suspect = if j.suspect { "true" } else { "false" };

        // Injection span: source track, from injection to the first VC
        // win (or to the journey's end while it never won one).
        let inject_end = j
            .hops
            .first()
            .map(|h| h.alloc_cycle)
            .unwrap_or(end_cycle)
            .max(j.inject_cycle + 1);
        self.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{},\"args\":{{\"pid\":{},\"src\":{},\"dst\":{},\"len\":{},\"suspect\":{suspect}}}}}",
            j.src + 1,
            j.inject_cycle,
            inject_end - j.inject_cycle,
            json::escape(&format!("p{} inject", j.pid)),
            j.pid,
            j.src,
            j.dst,
            j.len
        ));

        // One hold slice per hop: from the VC win until the last flit
        // clears the link (release), on the holding router's track.
        for (i, h) in j.hops.iter().enumerate() {
            let release = j
                .hops
                .get(i + 1)
                .map(|n| n.alloc_cycle)
                .unwrap_or(end_cycle)
                .max(h.last_flit.map(|c| c + 1).unwrap_or(0))
                .max(h.alloc_cycle + 1);
            self.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{},\"args\":{{\"pid\":{},\"channel\":{},\"to\":{},\"stalls\":{},\"suspect\":{suspect}}}}}",
                h.channel.node + 1,
                h.alloc_cycle,
                release - h.alloc_cycle,
                json::escape(&format!(
                    "p{} hold d{}{} vc{}",
                    j.pid, h.channel.dim, h.channel.dir, h.channel.vc
                )),
                j.pid,
                json::escape(&h.channel.to_string()),
                h.to.map(|t| t.to_string()).unwrap_or("null".into()),
                h.stalls
            ));
        }

        // Terminal instant.
        match j.end {
            JourneyEnd::Ejected { cycle, latency } => self.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{},\"ts\":{cycle},\"name\":{},\"args\":{{\"latency\":{latency}}}}}",
                j.dst + 1,
                json::escape(&format!("p{} eject", j.pid))
            )),
            JourneyEnd::Dropped { cycle } => self.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{},\"ts\":{cycle},\"name\":{},\"args\":{{}}}}",
                j.src + 1,
                json::escape(&format!("p{} drop", j.pid))
            )),
            JourneyEnd::InFlight => {}
        }

        // Flow chain across the spans above. A flow needs at least two
        // binding points, so journeys that never won a VC emit none.
        if !j.hops.is_empty() {
            let id = self.next_flow;
            self.next_flow += 1;
            let name = json::escape(&format!("p{}", j.pid));
            let mut points: Vec<(usize, u64)> = Vec::with_capacity(j.hops.len() + 1);
            points.push((j.src + 1, j.inject_cycle));
            for h in &j.hops {
                points.push((h.channel.node + 1, h.alloc_cycle));
            }
            let last = points.len() - 1;
            for (i, (tid, ts)) in points.into_iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
                self.push(format!(
                    "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"id\":{id},\"cat\":\"journey\",\"name\":{name}{bp}}}"
                ));
            }
        }
    }

    /// Appends the self-profiler's worker busy slices as a new trace
    /// process named `label`: one thread (track) per pool worker, one
    /// complete event per busy segment. Timestamps are real
    /// nanoseconds-since-epoch rendered as integer microseconds (unlike
    /// the journey processes, whose "µs" are simulation cycles — the
    /// tracks coexist in one file; only the rulers differ in meaning).
    /// A builder with no journey runs still renders: a profile-only
    /// export is a valid trace.
    pub fn add_worker_timeline(&mut self, label: &str, segments: &[crate::prof::WorkerSegment]) {
        if segments.is_empty() {
            return;
        }
        let pid = self.runs;
        self.runs += 1;
        self.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json::escape(label)
        ));
        let workers: BTreeSet<usize> = segments.iter().map(|s| s.worker).collect();
        for w in workers {
            self.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"worker {w}\"}}}}",
                w + 1
            ));
        }
        for s in segments {
            self.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{},\"args\":{{\"dur_ns\":{}}}}}",
                s.worker + 1,
                s.start_ns / 1_000,
                (s.dur_ns / 1_000).max(1),
                json::escape(&s.label),
                s.dur_ns
            ));
        }
    }

    fn push(&mut self, event: String) {
        self.events.push(event);
    }

    /// Serializes the trace as a Trace Event Format JSON object.
    pub fn finish(self) -> String {
        self.finish_inner(None)
    }

    /// Like [`Self::finish`], but splices one extra top-level key into
    /// the document (`value_json` must already be serialized JSON).
    /// Perfetto ignores unknown top-level keys, so the file stays
    /// loadable while carrying e.g. the `ebdaProfile` phase tree.
    pub fn finish_with_extra(self, key: &str, value_json: &str) -> String {
        self.finish_inner(Some((key, value_json)))
    }

    fn finish_inner(self, extra: Option<(&str, &str)>) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",");
        if let Some((key, value_json)) = extra {
            out.push_str(&json::escape(key));
            out.push(':');
            out.push_str(value_json);
            out.push(',');
        }
        out.push_str("\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Counts from a validated trace, for tests and smoke checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// All events.
    pub total: usize,
    /// Complete events (`ph: "X"`).
    pub complete: usize,
    /// Flow events (`ph: "s"/"t"/"f"`).
    pub flows: usize,
    /// Instant events (`ph: "i"`).
    pub instants: usize,
    /// Metadata events (`ph: "M"`).
    pub metadata: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events.
    pub tracks: usize,
}

/// Parses `text` and checks it is structurally valid Trace Event Format:
/// a `traceEvents` array of objects where every event has a `ph`,
/// non-metadata events have numeric `ts`/`pid`/`tid`, complete events
/// have a `dur`, and flow events carry `id` + `cat`.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = Value::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary {
        total: events.len(),
        ..TraceSummary::default()
    };
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let fail = |what: &str| format!("event {i}: {what}");
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| fail("missing ph"))?;
        let num = |key: &str| -> Result<u64, String> {
            e.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| fail(&format!("missing numeric {key}")))
        };
        if ph == "M" {
            summary.metadata += 1;
            e.get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| fail("metadata without name"))?;
            continue;
        }
        num("ts")?;
        tracks.insert((num("pid")?, num("tid")?));
        match ph {
            "X" => {
                num("dur")?;
                summary.complete += 1;
            }
            "s" | "t" | "f" => {
                num("id")?;
                e.get("cat")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| fail("flow event without cat"))?;
                summary.flows += 1;
            }
            "i" => summary.instants += 1,
            other => return Err(fail(&format!("unknown phase '{other}'"))),
        }
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

/// Renders a one-line human summary (for CLI stderr notes).
pub fn describe(summary: &TraceSummary) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{} events ({} spans, {} flow, {} instant) on {} tracks",
        summary.total, summary.complete, summary.flows, summary.instants, summary.tracks
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::journey::JourneyConfig;

    fn sample_tracer() -> JourneyTracer {
        let mut t = JourneyTracer::new(JourneyConfig::default());
        let events = [
            Event::Inject {
                cycle: 0,
                pid: 1,
                src: 0,
                dst: 2,
                len: 2,
            },
            Event::VcAlloc {
                cycle: 1,
                pid: 1,
                node: 0,
                dim: 0,
                dir: '+',
                vc: 0,
            },
            Event::LinkTraverse {
                cycle: 2,
                pid: 1,
                flit: 0,
                from: 0,
                to: 1,
                dim: 0,
                dir: '+',
                vc: 0,
            },
            Event::VcAlloc {
                cycle: 3,
                pid: 1,
                node: 1,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::LinkTraverse {
                cycle: 4,
                pid: 1,
                flit: 0,
                from: 1,
                to: 2,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::Eject {
                cycle: 6,
                pid: 1,
                node: 2,
                latency: 6,
            },
            Event::Inject {
                cycle: 2,
                pid: 2,
                src: 3,
                dst: 0,
                len: 2,
            },
            Event::VcAlloc {
                cycle: 3,
                pid: 2,
                node: 3,
                dim: 1,
                dir: '-',
                vc: 0,
            },
            Event::Watchdog {
                cycle: 40,
                blocked: 1,
            },
            Event::WaitFor {
                cycle: 40,
                waiter: 2,
                waits_on: 1,
                label: "p2 wants d1- vc0".into(),
            },
        ];
        for e in &events {
            t.observe(e);
        }
        t
    }

    #[test]
    fn export_validates_and_counts_flows() {
        let mut b = TraceBuilder::new();
        b.add_run("unit run", &sample_tracer());
        let text = b.finish();
        let summary = validate(&text).unwrap();
        // p1: inject + 2 hops = 3 spans, 3 flow points; p2: inject +
        // 1 hop = 2 spans, 2 flow points.
        assert_eq!(summary.complete, 5);
        assert_eq!(summary.flows, 5);
        assert!(summary.instants >= 3, "eject + trip + wait note");
        assert!(summary.metadata >= 4, "process + watchdog + routers");
        assert!(summary.tracks >= 4);
        assert!(text.contains("\"ph\":\"s\""));
        assert!(text.contains("\"bp\":\"e\""));
        assert!(!describe(&summary).is_empty());
    }

    #[test]
    fn multi_run_export_gets_distinct_pids() {
        let mut b = TraceBuilder::new();
        b.add_run("run a", &sample_tracer());
        b.add_run("run b", &sample_tracer());
        assert_eq!(b.runs(), 2);
        let text = b.finish();
        let doc = Value::parse(&text).unwrap();
        let pids: std::collections::BTreeSet<u64> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("pid").and_then(|v| v.as_u64()))
            .collect();
        assert_eq!(pids, [0u64, 1].into_iter().collect());
        validate(&text).unwrap();
    }

    #[test]
    fn empty_builder_still_emits_a_valid_document() {
        let text = TraceBuilder::new().finish();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.total, 0);
    }

    #[test]
    fn spans_never_have_zero_duration() {
        let mut b = TraceBuilder::new();
        b.add_run("zero", &sample_tracer());
        let text = b.finish();
        let doc = Value::parse(&text).unwrap();
        for e in doc.get("traceEvents").unwrap().as_arr().unwrap() {
            if e.get("ph").and_then(|v| v.as_str()) == Some("X") {
                assert!(e.get("dur").unwrap().as_u64().unwrap() >= 1);
            }
        }
    }

    #[test]
    fn worker_timeline_renders_one_track_per_worker() {
        let seg =
            |worker: usize, label: &str, start_ns: u64, dur_ns: u64| crate::prof::WorkerSegment {
                worker,
                label: label.into(),
                start_ns,
                dur_ns,
            };
        let mut b = TraceBuilder::new();
        b.add_run("run", &sample_tracer());
        b.add_worker_timeline(
            "workers",
            &[
                seg(0, "task 0", 1_000, 500), // sub-µs dur still renders (≥1)
                seg(0, "task 2", 9_000, 4_000),
                seg(1, "task 1", 2_000, 3_000),
            ],
        );
        let text = b.finish();
        let summary = validate(&text).unwrap();
        assert!(text.contains("\"name\":\"workers\""));
        assert!(text.contains("worker 0") && text.contains("worker 1"));
        assert!(summary.complete >= 8, "journey spans + 3 worker slices");
        // No segments → no process either.
        let mut empty = TraceBuilder::new();
        empty.add_worker_timeline("workers", &[]);
        assert_eq!(empty.runs(), 0);
    }

    #[test]
    fn finish_with_extra_stays_a_valid_trace() {
        let mut b = TraceBuilder::new();
        b.add_run("run", &sample_tracer());
        let text = b.finish_with_extra("ebdaProfile", "{\"phases\":[]}");
        validate(&text).expect("extra key must not break the trace");
        let doc = Value::parse(&text).unwrap();
        assert!(doc.get("ebdaProfile").is_some());
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"other\":[]}").is_err());
        assert!(validate("{\"traceEvents\":[{\"ts\":1}]}").is_err());
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1}]}").is_err(),
            "complete event without dur must be rejected"
        );
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"s\",\"pid\":0,\"tid\":0,\"ts\":1,\"id\":3}]}")
                .is_err(),
            "flow event without cat must be rejected"
        );
    }
}
