//! Per-packet journey tracing: the causal span tree of a sampled packet.
//!
//! A *journey* is everything one packet did between injection and
//! ejection/drop — which output VCs it won, which channels it held and
//! for how long, where it stalled for credits, and (when a watchdog
//! fires) whether it sat on a suspected wait cycle. Journeys are the
//! per-packet complement to the aggregate flight-recorder totals: they
//! make the hold/want structure behind the Dally CDG check visible as a
//! timeline instead of a verdict.
//!
//! The tracer consumes the same [`Event`] stream the recorder already
//! stores, so the simulator needs no new emission sites; sampling is a
//! stateless splitmix64 hash of the packet id, which makes the sampled
//! set a deterministic function of `(seed, pid)` regardless of event
//! order or ring evictions.

use std::collections::HashMap;
use std::fmt;

use crate::event::Event;
use crate::rng::Rng64;

/// Hard cap on retained wait-for notes (a pathological watchdog loop
/// must not grow the tracer without bound).
const MAX_WAIT_NOTES: usize = 1024;
/// Hard cap on retained watchdog trip notes.
const MAX_TRIPS: usize = 256;

/// Journey-tracer configuration.
#[derive(Debug, Clone)]
pub struct JourneyConfig {
    /// Fraction of packets to trace, in `[0, 1]`. `1.0` traces every
    /// packet; `0.0` traces none (but keeps watchdog notes).
    pub sample_rate: f64,
    /// Sampler seed. The sampled pid set is a pure function of
    /// `(seed, sample_rate)`, independent of traffic seed or event order.
    pub seed: u64,
    /// Maximum journeys retained; packets sampled past the cap are
    /// counted in [`JourneyTracer::skipped`] instead of traced.
    pub max_journeys: usize,
}

impl Default for JourneyConfig {
    fn default() -> Self {
        JourneyConfig {
            sample_rate: 1.0,
            seed: 0x1057,
            max_journeys: 4096,
        }
    }
}

/// A physical channel endpoint: output VC `(dim, dir, vc)` at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId {
    /// Node that owns the output channel.
    pub node: usize,
    /// Dimension index.
    pub dim: u8,
    /// Direction, `+` or `-`.
    pub dir: char,
    /// Virtual-channel index (0-based).
    pub vc: u8,
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{} d{}{} vc{}", self.node, self.dim, self.dir, self.vc)
    }
}

/// One hop of a journey: the span from winning an output VC to the last
/// flit leaving on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The output channel this hop allocated and held.
    pub channel: ChannelId,
    /// Downstream node, known once the first flit traverses the link.
    pub to: Option<usize>,
    /// Cycle the VC was won.
    pub alloc_cycle: u64,
    /// Cycle the first flit crossed the link, if any did.
    pub first_flit: Option<u64>,
    /// Cycle the last observed flit crossed the link.
    pub last_flit: Option<u64>,
    /// Credit stalls charged to this hop while it held the channel.
    pub stalls: u64,
}

/// How (or whether) a journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyEnd {
    /// Delivered in full.
    Ejected {
        /// Ejection cycle.
        cycle: u64,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// Torn down mid-flight (e.g. by a link fault).
    Dropped {
        /// Drop cycle.
        cycle: u64,
    },
    /// Still in the network when the trace ended — the interesting case
    /// for deadlock forensics.
    InFlight,
}

/// The recorded journey of one sampled packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    /// Packet id.
    pub pid: u64,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Packet length in flits.
    pub len: usize,
    /// Injection cycle.
    pub inject_cycle: u64,
    /// Terminal state.
    pub end: JourneyEnd,
    /// Hops in allocation order.
    pub hops: Vec<Hop>,
    /// True when a watchdog wait-for edge named this packet (either
    /// side) while it was in flight.
    pub suspect: bool,
}

impl Journey {
    /// The cycle this journey's timeline closes at: ejection/drop cycle,
    /// or `horizon` while still in flight.
    pub fn end_cycle(&self, horizon: u64) -> u64 {
        match self.end {
            JourneyEnd::Ejected { cycle, .. } | JourneyEnd::Dropped { cycle } => cycle,
            JourneyEnd::InFlight => horizon.max(self.inject_cycle),
        }
    }
}

/// One wait-for edge observed from a watchdog (online trip or
/// post-mortem), kept alongside journeys for timeline annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitNote {
    /// Cycle the edge was diagnosed.
    pub cycle: u64,
    /// The blocked packet.
    pub waiter: u64,
    /// The packet it waits on.
    pub waits_on: u64,
    /// Human-readable wait description.
    pub label: String,
}

/// One watchdog firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripNote {
    /// Cycle the watchdog fired.
    pub cycle: u64,
    /// Packets still in flight at that point.
    pub blocked: usize,
}

/// Builds [`Journey`]s from the recorder's event stream.
#[derive(Debug, Clone)]
pub struct JourneyTracer {
    cfg: JourneyConfig,
    /// pid → index into `journeys`, for packets still in flight.
    open: HashMap<u64, usize>,
    journeys: Vec<Journey>,
    skipped: u64,
    wait_notes: Vec<WaitNote>,
    notes_dropped: u64,
    trips: Vec<TripNote>,
    last_cycle: u64,
}

impl JourneyTracer {
    /// Creates a tracer with the given configuration.
    pub fn new(cfg: JourneyConfig) -> Self {
        JourneyTracer {
            cfg,
            open: HashMap::new(),
            journeys: Vec::new(),
            skipped: 0,
            wait_notes: Vec::new(),
            notes_dropped: 0,
            trips: Vec::new(),
            last_cycle: 0,
        }
    }

    /// This tracer's configuration.
    pub fn config(&self) -> &JourneyConfig {
        &self.cfg
    }

    /// Whether packet `pid` is in the sampled set. Stateless: one
    /// splitmix64 draw keyed on `seed ^ hash(pid)`, so the answer never
    /// depends on how many packets were seen before.
    pub fn sampled(&self, pid: u64) -> bool {
        if self.cfg.sample_rate >= 1.0 {
            return true;
        }
        if self.cfg.sample_rate <= 0.0 {
            return false;
        }
        let key = self.cfg.seed ^ pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng64::new(key).gen_f64() < self.cfg.sample_rate
    }

    /// Folds one event into the journey set.
    pub fn observe(&mut self, event: &Event) {
        self.last_cycle = self.last_cycle.max(event.cycle());
        match event {
            Event::Inject {
                cycle,
                pid,
                src,
                dst,
                len,
            } => {
                if !self.sampled(*pid) {
                    return;
                }
                if self.journeys.len() >= self.cfg.max_journeys {
                    self.skipped += 1;
                    return;
                }
                self.open.insert(*pid, self.journeys.len());
                self.journeys.push(Journey {
                    pid: *pid,
                    src: *src,
                    dst: *dst,
                    len: *len,
                    inject_cycle: *cycle,
                    end: JourneyEnd::InFlight,
                    hops: Vec::new(),
                    suspect: false,
                });
            }
            Event::VcAlloc {
                cycle,
                pid,
                node,
                dim,
                dir,
                vc,
            } => {
                if let Some(j) = self.open_mut(*pid) {
                    j.hops.push(Hop {
                        channel: ChannelId {
                            node: *node,
                            dim: *dim,
                            dir: *dir,
                            vc: *vc,
                        },
                        to: None,
                        alloc_cycle: *cycle,
                        first_flit: None,
                        last_flit: None,
                        stalls: 0,
                    });
                }
            }
            Event::SwitchStall {
                pid,
                node,
                dim,
                dir,
                vc,
                ..
            } => {
                let ch = ChannelId {
                    node: *node,
                    dim: *dim,
                    dir: *dir,
                    vc: *vc,
                };
                if let Some(j) = self.open_mut(*pid) {
                    if let Some(h) = j.hops.iter_mut().rev().find(|h| h.channel == ch) {
                        h.stalls += 1;
                    }
                }
            }
            Event::LinkTraverse {
                cycle,
                pid,
                from,
                to,
                dim,
                dir,
                vc,
                ..
            } => {
                let ch = ChannelId {
                    node: *from,
                    dim: *dim,
                    dir: *dir,
                    vc: *vc,
                };
                if let Some(j) = self.open_mut(*pid) {
                    if let Some(h) = j.hops.iter_mut().rev().find(|h| h.channel == ch) {
                        h.to = Some(*to);
                        h.first_flit.get_or_insert(*cycle);
                        h.last_flit = Some(*cycle);
                    }
                }
            }
            Event::Eject {
                cycle,
                pid,
                latency,
                ..
            } => {
                if let Some(idx) = self.open.remove(pid) {
                    self.journeys[idx].end = JourneyEnd::Ejected {
                        cycle: *cycle,
                        latency: *latency,
                    };
                }
            }
            Event::Drop { cycle, pid } => {
                if let Some(idx) = self.open.remove(pid) {
                    self.journeys[idx].end = JourneyEnd::Dropped { cycle: *cycle };
                }
            }
            Event::Watchdog { cycle, blocked } => {
                if self.trips.len() < MAX_TRIPS {
                    self.trips.push(TripNote {
                        cycle: *cycle,
                        blocked: *blocked,
                    });
                }
            }
            Event::WaitFor {
                cycle,
                waiter,
                waits_on,
                label,
            } => {
                for pid in [*waiter, *waits_on] {
                    if let Some(j) = self.open_mut(pid) {
                        j.suspect = true;
                    }
                }
                if self.wait_notes.len() < MAX_WAIT_NOTES {
                    self.wait_notes.push(WaitNote {
                        cycle: *cycle,
                        waiter: *waiter,
                        waits_on: *waits_on,
                        label: label.clone(),
                    });
                } else {
                    self.notes_dropped += 1;
                }
            }
        }
    }

    fn open_mut(&mut self, pid: u64) -> Option<&mut Journey> {
        let idx = *self.open.get(&pid)?;
        Some(&mut self.journeys[idx])
    }

    /// All recorded journeys, in injection order.
    pub fn journeys(&self) -> &[Journey] {
        &self.journeys
    }

    /// Sampled packets that were not traced because the cap was hit.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Wait-for edges observed from watchdog diagnoses.
    pub fn wait_notes(&self) -> &[WaitNote] {
        &self.wait_notes
    }

    /// Wait-for edges discarded past [`MAX_WAIT_NOTES`].
    pub fn notes_dropped(&self) -> u64 {
        self.notes_dropped
    }

    /// Watchdog firings, in order.
    pub fn trips(&self) -> &[TripNote] {
        &self.trips
    }

    /// The largest cycle seen in any event — the timeline horizon used to
    /// close spans of packets still in flight.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(rate: f64) -> JourneyTracer {
        JourneyTracer::new(JourneyConfig {
            sample_rate: rate,
            ..JourneyConfig::default()
        })
    }

    #[test]
    fn sampler_is_deterministic_and_roughly_calibrated() {
        let a = tracer(0.5);
        let b = tracer(0.5);
        let hits = (0..1000u64).filter(|&p| a.sampled(p)).count();
        assert!((300..700).contains(&hits), "rate 0.5 sampled {hits}/1000");
        for pid in 0..1000 {
            assert_eq!(a.sampled(pid), b.sampled(pid));
        }
        assert!((0..100).all(|p| tracer(1.0).sampled(p)));
        assert!(!(0..100).any(|p| tracer(0.0).sampled(p)));
    }

    #[test]
    fn different_seeds_sample_different_sets() {
        let a = tracer(0.5);
        let mut b = tracer(0.5);
        b.cfg.seed = 0xDEAD;
        let same = (0..1000u64)
            .filter(|&p| a.sampled(p) == b.sampled(p))
            .count();
        assert!(same < 1000, "seed change must reshuffle the sampled set");
    }

    #[test]
    fn a_full_journey_is_reconstructed() {
        let mut t = tracer(1.0);
        let events = [
            Event::Inject {
                cycle: 5,
                pid: 7,
                src: 0,
                dst: 2,
                len: 3,
            },
            Event::VcAlloc {
                cycle: 6,
                pid: 7,
                node: 0,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::SwitchStall {
                cycle: 7,
                pid: 7,
                node: 0,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::LinkTraverse {
                cycle: 8,
                pid: 7,
                flit: 0,
                from: 0,
                to: 1,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::VcAlloc {
                cycle: 9,
                pid: 7,
                node: 1,
                dim: 0,
                dir: '+',
                vc: 0,
            },
            Event::LinkTraverse {
                cycle: 10,
                pid: 7,
                flit: 0,
                from: 1,
                to: 2,
                dim: 0,
                dir: '+',
                vc: 0,
            },
            Event::LinkTraverse {
                cycle: 12,
                pid: 7,
                flit: 2,
                from: 1,
                to: 2,
                dim: 0,
                dir: '+',
                vc: 0,
            },
            Event::Eject {
                cycle: 13,
                pid: 7,
                node: 2,
                latency: 8,
            },
        ];
        for e in &events {
            t.observe(e);
        }
        assert_eq!(t.journeys().len(), 1);
        let j = &t.journeys()[0];
        assert_eq!(
            (j.pid, j.src, j.dst, j.len, j.inject_cycle),
            (7, 0, 2, 3, 5)
        );
        assert_eq!(
            j.end,
            JourneyEnd::Ejected {
                cycle: 13,
                latency: 8
            }
        );
        assert_eq!(j.hops.len(), 2);
        assert_eq!(j.hops[0].stalls, 1);
        assert_eq!(j.hops[0].to, Some(1));
        assert_eq!(j.hops[0].first_flit, Some(8));
        assert_eq!(j.hops[1].alloc_cycle, 9);
        assert_eq!(j.hops[1].last_flit, Some(12));
        assert_eq!(j.end_cycle(999), 13);
        assert_eq!(t.last_cycle(), 13);
    }

    #[test]
    fn cap_skips_but_counts() {
        let mut t = JourneyTracer::new(JourneyConfig {
            sample_rate: 1.0,
            max_journeys: 2,
            ..JourneyConfig::default()
        });
        for pid in 0..5 {
            t.observe(&Event::Inject {
                cycle: pid,
                pid,
                src: 0,
                dst: 1,
                len: 1,
            });
        }
        assert_eq!(t.journeys().len(), 2);
        assert_eq!(t.skipped(), 3);
    }

    #[test]
    fn wait_for_marks_in_flight_packets_suspect() {
        let mut t = tracer(1.0);
        for pid in [1u64, 2] {
            t.observe(&Event::Inject {
                cycle: 0,
                pid,
                src: 0,
                dst: 3,
                len: 2,
            });
        }
        t.observe(&Event::Watchdog {
            cycle: 50,
            blocked: 2,
        });
        t.observe(&Event::WaitFor {
            cycle: 50,
            waiter: 1,
            waits_on: 2,
            label: "p1 wants X+ held by p2".into(),
        });
        assert!(t.journeys().iter().all(|j| j.suspect));
        assert_eq!(t.trips().len(), 1);
        assert_eq!(t.wait_notes().len(), 1);
        assert_eq!(t.journeys()[0].end, JourneyEnd::InFlight);
        assert_eq!(t.journeys()[0].end_cycle(50), 50);
    }

    #[test]
    fn unsampled_packets_leave_no_trace() {
        let mut t = tracer(0.0);
        t.observe(&Event::Inject {
            cycle: 0,
            pid: 1,
            src: 0,
            dst: 1,
            len: 1,
        });
        t.observe(&Event::VcAlloc {
            cycle: 1,
            pid: 1,
            node: 0,
            dim: 0,
            dir: '+',
            vc: 0,
        });
        assert!(t.journeys().is_empty());
        assert_eq!(t.skipped(), 0);
    }
}
