//! A minimal blocking HTTP server exposing the global metrics registry,
//! plus the matching one-shot client used by `ebda monitor`, the
//! loopback tests and the CI smoke job.
//!
//! The server handles exactly four routes:
//!
//! * `GET /metrics` — the Prometheus text exposition from
//!   [`crate::metrics::render_global`]
//! * `GET /healthz` — `ok uptime_seconds=N\n`, for liveness probes
//!   (`N` counts whole seconds since the server started serving)
//! * `GET /ledger` — the run ledger registered via
//!   [`crate::ledger::set_global_path`] as a JSON array (404 when no
//!   ledger is registered)
//! * `GET /coverage` — the coverage map registered via
//!   [`crate::coverage::set_global_path`] as canonical JSON (404 when
//!   no map is registered)
//!
//! It is deliberately tiny: one detached thread, one connection at a
//! time, HTTP/1.0-style `Connection: close` responses. Scrapes are rare
//! (seconds apart) and the body is rendered fresh per request, so there
//! is nothing to pool or pipeline. Binding port 0 is supported; the
//! bound address is available via [`MetricsServer::local_addr`] and is
//! printed to stderr by the CLI wiring so scripts can discover it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running `/metrics` endpoint. Dropping the handle leaves the server
/// thread running (detached); call [`MetricsServer::shutdown`] to stop
/// it deterministically.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9200`, port 0 allowed) and starts
    /// serving on a detached background thread.
    pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let started = Instant::now();
        std::thread::Builder::new()
            .name("ebda-metrics".into())
            .spawn(move || serve_loop(listener, &stop2, started))?;
        Ok(MetricsServer { addr, stop })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server thread: sets the stop flag and nudges the
    /// listener with a self-connection so `accept` returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

fn serve_loop(listener: TcpListener, stop: &AtomicBool, started: Instant) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = handle(&mut stream, started);
    }
}

fn handle(stream: &mut TcpStream, started: Instant) -> std::io::Result<()> {
    // Read until the end of the request head; we only need the first line.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&buf);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::metrics::render_global(),
        ),
        "/healthz" => (
            "200 OK",
            "text/plain; charset=utf-8",
            format!("ok uptime_seconds={}\n", started.elapsed().as_secs()),
        ),
        "/coverage" => match crate::coverage::global_path() {
            Some(path) => match crate::coverage::CoverageMap::read_file(&path) {
                Ok(map) => (
                    "200 OK",
                    "application/json; charset=utf-8",
                    map.to_json() + "\n",
                ),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("coverage map unreadable: {e}\n"),
                ),
            },
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no coverage map registered\n".to_string(),
            ),
        },
        "/ledger" => match crate::ledger::global_path() {
            Some(path) => match crate::ledger::render_json(&path) {
                Ok(body) => ("200 OK", "application/json; charset=utf-8", body),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("ledger unreadable: {e}\n"),
                ),
            },
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no ledger registered\n".to_string(),
            ),
        },
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Performs a one-shot `GET path` against `addr` and returns the response
/// body, failing on connection errors or non-200 statuses. Connect and
/// read are both bounded by a 5 s timeout so a hung scrape cannot wedge
/// a test run; use [`http_get_with_timeout`] to tighten or loosen it.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    http_get_with_timeout(addr, path, Duration::from_secs(5))
}

/// [`http_get`] with an explicit connect/read timeout.
pub fn http_get_with_timeout(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("{addr}{path}: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test for the whole server lifecycle: the metrics registry is
    // process-global, so keep the interactions in a single test fn.
    #[test]
    fn serves_metrics_and_healthz_on_loopback() {
        let server = MetricsServer::serve("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr().to_string();

        let health = http_get(&addr, "/healthz").expect("healthz");
        assert!(
            health.starts_with("ok uptime_seconds=") && health.ends_with('\n'),
            "unexpected healthz body {health:?}"
        );
        let secs: u64 = health
            .trim()
            .strip_prefix("ok uptime_seconds=")
            .unwrap()
            .parse()
            .expect("uptime is whole seconds");
        assert!(secs < 60, "fresh server cannot be up {secs}s");

        crate::metrics::global().counter_add("ebda_http_test_total", &[], 41);
        let body = http_get(&addr, "/metrics").expect("metrics");
        assert!(
            body.contains("ebda_http_test_total 41"),
            "missing counter in {body:?}"
        );
        let samples = crate::metrics::parse_exposition(&body).expect("parseable exposition");
        assert!(samples.iter().any(|s| s.name == "ebda_http_test_total"));

        assert!(http_get(&addr, "/nope").is_err());

        // /ledger: 404 until a ledger is registered, JSON array after.
        assert!(http_get(&addr, "/ledger").is_err());
        let mut ledger_path = std::env::temp_dir();
        ledger_path.push(format!("ebda-http-ledger-{}", std::process::id()));
        let _ = std::fs::remove_file(&ledger_path);
        crate::ledger::append(
            &ledger_path,
            &[crate::ledger::LedgerRecord {
                index: 0,
                source: "cli".into(),
                name: "test".into(),
                git_rev: "abc".into(),
                seed: 0,
                verdict: "deadlock-free".into(),
                evidence: "certificate".into(),
                hash: "0000000000000000".into(),
                gfp_sweeps: 1,
                wait_pairs: 0,
                coverage: String::new(),
                provenance: "{}".into(),
            }],
        )
        .unwrap();
        crate::ledger::set_global_path(Some(ledger_path.clone()));
        let body = http_get(&addr, "/ledger").expect("ledger route");
        let parsed = crate::json::Value::parse(&body).expect("ledger body is JSON");
        assert_eq!(parsed.as_arr().map(<[_]>::len), Some(1));
        crate::ledger::set_global_path(None);
        let _ = std::fs::remove_file(&ledger_path);

        // /coverage: 404 until a map is registered, canonical JSON after.
        assert!(http_get(&addr, "/coverage").is_err());
        let mut coverage_path = std::env::temp_dir();
        coverage_path.push(format!("ebda-http-coverage-{}", std::process::id()));
        let mut map = crate::coverage::CoverageMap::new("http-test");
        map.record("obligation", "theorem1/p0");
        map.write_file(&coverage_path).unwrap();
        crate::coverage::set_global_path(Some(coverage_path.clone()));
        let body = http_get(&addr, "/coverage").expect("coverage route");
        let served =
            crate::coverage::CoverageMap::from_json(body.trim_end()).expect("coverage body parses");
        assert_eq!(served, map);
        crate::coverage::set_global_path(None);
        let _ = std::fs::remove_file(&coverage_path);

        server.shutdown();
    }

    #[test]
    fn http_get_times_out_instead_of_hanging() {
        // A listener that accepts but never responds: the read timeout
        // must surface as an error rather than wedging the caller.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let start = Instant::now();
        let err = http_get_with_timeout(&addr, "/metrics", Duration::from_millis(200))
            .expect_err("silent server must time out");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timeout was not honored"
        );
        drop(hold);
    }
}
