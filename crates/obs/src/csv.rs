//! Hand-rolled CSV writing and parsing (RFC 4180 subset).
//!
//! Fields containing commas, quotes or newlines are quoted with `"`
//! doubling; everything else is written bare. The parser accepts exactly
//! what the writer emits, which is all the round-trip tests need.

/// Escapes one field for CSV output.
pub fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Joins fields into one CSV row (no trailing newline).
pub fn row(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| field(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Splits one CSV line into fields, undoing the quoting of [`field`].
///
/// Returns an error on an unterminated quote.
pub fn parse_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in CSV line: {line}"));
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(field("abc"), "abc");
        assert_eq!(row(&["a".into(), "b".into()]), "a,b");
    }

    #[test]
    fn special_fields_are_quoted_and_round_trip() {
        for s in ["a,b", "say \"hi\"", "line\nbreak", ""] {
            let encoded = row(&[s.to_string(), "tail".to_string()]);
            // The embedded-newline case is a single logical row; our
            // writers never emit embedded newlines, but quoting keeps the
            // parser correct on one-line inputs.
            if !s.contains('\n') {
                let back = parse_line(&encoded).unwrap();
                assert_eq!(back, vec![s.to_string(), "tail".to_string()]);
            }
        }
    }

    #[test]
    fn rejects_unterminated_quotes() {
        assert!(parse_line("\"oops").is_err());
    }
}
