//! Deterministic self-profiler: phase-level wall-clock *and* work-unit
//! accounting for the tool's own hot paths, plus per-worker busy
//! timelines for the `ebda-par` pool.
//!
//! Where [`crate::telemetry`] times *functions* and [`crate::metrics`]
//! counts *simulated traffic*, this module answers "where does the tool
//! itself spend its time, and how much algorithmic work did each phase
//! do?". Every phase records two kinds of numbers:
//!
//! * **wall nanoseconds** — honest but noisy, never compared across
//!   runs by machines;
//! * **work units** — deterministic counters of the algorithmic work
//!   done (cycles simulated, GFP sweeps, CDG edges visited, shrink
//!   evaluations, artifacts checked). These are *byte-identical at any
//!   thread count* for run-to-completion workloads, which is what the
//!   `bench_report --baseline --gate` regression gate compares on a
//!   noisy CI host.
//!
//! Phases form a **static hierarchy through their names**: a phase is a
//! slash path like `sim/run/route` or `oracle/evaluate/dally`. Using
//! literal paths instead of a runtime call stack is what keeps the
//! counter tree thread-count invariant — a worker thread records
//! `oracle/evaluate/brute` whether or not `oracle/campaign` is on *its*
//! stack.
//!
//! Off by default: until [`set_enabled`] every instrumentation site is
//! a single relaxed atomic load and **zero allocations** (pinned by
//! `crates/sim/tests/prof_overhead.rs`). Hot loops batch locally and
//! flush once per run through [`record`]/[`work`], mirroring the
//! engine's metrics pattern. When the metrics registry is also enabled,
//! recording mirrors into the `ebda_prof_phase_calls_total`,
//! `ebda_prof_phase_wall_ns` and `ebda_prof_work_units_total` families
//! (the wall family ends in `_ns`, so deterministic rendering omits it
//! like every other wall-clock family).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{self, Value};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the profiler on or off process-wide. Enabling pins the epoch
/// that worker-segment timestamps are relative to.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide instant worker-segment timestamps count from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the profiler epoch (pinned at the first
/// call of [`set_enabled`]`(true)` or of this function).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Aggregated statistics of one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase ran (or operations it timed, for batched flushes).
    pub calls: u64,
    /// Total wall nanoseconds attributed to the phase.
    pub wall_ns: u64,
    /// Deterministic work-unit counters, keyed by unit name.
    pub work: BTreeMap<String, u64>,
}

/// One contiguous busy slice of a pool worker, relative to the epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSegment {
    /// Worker index within its pool job.
    pub worker: usize,
    /// What the worker was computing (e.g. `task 17`).
    pub label: String,
    /// Slice start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Slice duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Default)]
struct Registry {
    phases: BTreeMap<&'static str, PhaseStat>,
    workers: Vec<WorkerSegment>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard timing one phase invocation; see [`phase`].
#[must_use = "the phase is timed until the guard drops"]
pub struct PhaseGuard {
    armed: Option<(&'static str, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.armed.take() {
            record(name, 1, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts timing one invocation of `name`; the returned guard records
/// on drop. Disabled path: one atomic load, no clock read, no
/// allocation.
pub fn phase(name: &'static str) -> PhaseGuard {
    PhaseGuard {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

/// Batch-records `calls` invocations totalling `wall_ns` against
/// `path`. Hot loops accumulate locally and flush once through here.
pub fn record(path: &'static str, calls: u64, wall_ns: u64) {
    if !enabled() || (calls == 0 && wall_ns == 0) {
        return;
    }
    {
        let mut r = lock();
        let p = r.phases.entry(path).or_default();
        p.calls += calls;
        p.wall_ns += wall_ns;
    }
    if crate::metrics::enabled() {
        let labels = [("phase", path.to_string())];
        crate::metrics::counter_add("ebda_prof_phase_calls_total", &labels, calls);
        crate::metrics::counter_add("ebda_prof_phase_wall_ns", &labels, wall_ns);
    }
}

/// Charges `amount` deterministic work units of kind `unit` to `path`.
pub fn work(path: &'static str, unit: &'static str, amount: u64) {
    if !enabled() || amount == 0 {
        return;
    }
    {
        let mut r = lock();
        let p = r.phases.entry(path).or_default();
        *p.work.entry(unit.to_string()).or_insert(0) += amount;
    }
    if crate::metrics::enabled() {
        crate::metrics::counter_add(
            "ebda_prof_work_units_total",
            &[("phase", path.to_string()), ("unit", unit.to_string())],
            amount,
        );
    }
}

/// Appends a batch of worker busy segments (one lock for the whole
/// batch; workers push once at exit, not per task).
pub fn push_worker_segments(segments: Vec<WorkerSegment>) {
    if !enabled() || segments.is_empty() {
        return;
    }
    lock().workers.extend(segments);
}

/// Clears all recorded phases and worker segments.
pub fn reset() {
    let mut r = lock();
    r.phases.clear();
    r.workers.clear();
}

/// Copies the registry out; worker segments are sorted by
/// `(worker, start_ns, label)` so rendering order is stable.
pub fn snapshot() -> ProfSnapshot {
    let r = lock();
    let mut workers = r.workers.clone();
    workers.sort_by(|a, b| (a.worker, a.start_ns, &a.label).cmp(&(b.worker, b.start_ns, &b.label)));
    ProfSnapshot {
        phases: r
            .phases
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        workers,
    }
}

/// A point-in-time copy of the profiler registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// Phase path → aggregated stats, sorted by path.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Worker busy slices, sorted for stable rendering.
    pub workers: Vec<WorkerSegment>,
}

fn human_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl ProfSnapshot {
    /// Direct children of `path` in the slash hierarchy.
    fn children<'a>(&'a self, path: &str) -> impl Iterator<Item = (&'a String, &'a PhaseStat)> {
        let prefix = format!("{path}/");
        self.phases
            .iter()
            .filter(move |(p, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains('/'))
    }

    /// Wall ns of `path` not accounted to any recorded direct child.
    fn self_ns(&self, path: &str, stat: &PhaseStat) -> u64 {
        let child_ns: u64 = self.children(path).map(|(_, s)| s.wall_ns).sum();
        stat.wall_ns.saturating_sub(child_ns)
    }

    /// Renders the **deterministic** side of the snapshot — one line per
    /// phase with its call count and work units, *no wall-clock* — the
    /// artifact that must be byte-identical at every thread count.
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.phases {
            let _ = write!(out, "{path} calls={}", stat.calls);
            for (unit, v) in &stat.work {
                let _ = write!(out, " {unit}={v}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders the aggregated self-time/total-time table (wall-clock
    /// included — human consumption, not comparison).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>12}  work",
            "phase", "calls", "total", "self"
        );
        for (path, stat) in &self.phases {
            let work: Vec<String> = stat
                .work
                .iter()
                .map(|(unit, v)| format!("{unit}={v}"))
                .collect();
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>12} {:>12}  {}",
                path,
                stat.calls,
                human_ns(stat.wall_ns),
                human_ns(self.self_ns(path, stat)),
                work.join(" ")
            );
        }
        let mut by_worker: BTreeMap<usize, u64> = BTreeMap::new();
        for s in &self.workers {
            *by_worker.entry(s.worker).or_insert(0) += s.dur_ns;
        }
        if !by_worker.is_empty() {
            let _ = writeln!(out, "workers ({} busy segments):", self.workers.len());
            for (w, busy) in by_worker {
                let _ = writeln!(out, "  worker {w:<3} busy {}", human_ns(busy));
            }
        }
        out
    }

    /// Serializes the snapshot as the `ebdaProfile` JSON object: a flat
    /// `phases` array, a nested flame-style `flame` tree over the slash
    /// hierarchy, and the raw worker segments.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":[");
        for (i, (path, stat)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"calls\":{},\"wall_ns\":{},\"work\":{{",
                json::escape(path),
                stat.calls,
                stat.wall_ns
            );
            for (j, (unit, v)) in stat.work.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{v}", json::escape(unit));
            }
            out.push_str("}}");
        }
        out.push_str("],\"flame\":");
        out.push_str(&self.flame_json());
        out.push_str(",\"workers\":[");
        for (i, s) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"label\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.worker,
                json::escape(&s.label),
                s.start_ns,
                s.dur_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// The flame-style tree alone: nested `{name, wall_ns, children}`
    /// nodes over the slash hierarchy, rooted at `"profile"`.
    pub fn flame_json(&self) -> String {
        #[derive(Default)]
        struct Node {
            wall_ns: u64,
            children: BTreeMap<String, Node>,
        }
        let mut root = Node::default();
        for (path, stat) in &self.phases {
            let mut node = &mut root;
            for seg in path.split('/') {
                node = node.children.entry(seg.to_string()).or_default();
            }
            node.wall_ns = stat.wall_ns;
        }
        // A parent's rendered value covers at least its children, so
        // pure-organizational nodes (never timed directly) still size
        // correctly in a flame view.
        fn render(name: &str, node: &Node, out: &mut String) -> u64 {
            let _ = write!(out, "{{\"name\":{},", json::escape(name));
            let mut kids = String::new();
            let mut child_sum = 0u64;
            for (i, (cname, c)) in node.children.iter().enumerate() {
                if i > 0 {
                    kids.push(',');
                }
                child_sum += render(cname, c, &mut kids);
            }
            let total = node.wall_ns.max(child_sum);
            let _ = write!(out, "\"wall_ns\":{total},\"children\":[{kids}]}}");
            total
        }
        let mut out = String::new();
        render("profile", &root, &mut out);
        out
    }

    /// Parses a snapshot back from the `ebdaProfile` JSON object (the
    /// inverse of [`Self::to_json`], used by `ebda profile`).
    pub fn from_value(v: &Value) -> Result<ProfSnapshot, String> {
        let mut snap = ProfSnapshot::default();
        let phases = v
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or("ebdaProfile: missing phases array")?;
        for (i, p) in phases.iter().enumerate() {
            let fail = |what: &str| format!("ebdaProfile phase {i}: {what}");
            let path = p
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("missing path"))?;
            let mut stat = PhaseStat {
                calls: p
                    .get("calls")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| fail("missing calls"))?,
                wall_ns: p
                    .get("wall_ns")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| fail("missing wall_ns"))?,
                work: BTreeMap::new(),
            };
            if let Some(Value::Obj(work)) = p.get("work") {
                for (unit, amount) in work {
                    let amount = amount
                        .as_u64()
                        .ok_or_else(|| fail("non-integer work unit"))?;
                    stat.work.insert(unit.clone(), amount);
                }
            }
            snap.phases.insert(path.to_string(), stat);
        }
        if let Some(workers) = v.get("workers").and_then(Value::as_arr) {
            for (i, w) in workers.iter().enumerate() {
                let fail = |what: &str| format!("ebdaProfile worker segment {i}: {what}");
                snap.workers.push(WorkerSegment {
                    worker: w
                        .get("worker")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("missing worker"))?
                        as usize,
                    label: w
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or_else(|| fail("missing label"))?
                        .to_string(),
                    start_ns: w
                        .get("start_ns")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("missing start_ns"))?,
                    dur_ns: w
                        .get("dur_ns")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("missing dur_ns"))?,
                });
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One lock for every test touching the process-global registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        {
            let _p = phase("unit/test");
        }
        work("unit/test", "things", 5);
        record("unit/test", 1, 10);
        push_worker_segments(vec![WorkerSegment {
            worker: 0,
            label: "x".into(),
            start_ns: 0,
            dur_ns: 1,
        }]);
        let snap = snapshot();
        assert!(snap.phases.is_empty());
        assert!(snap.workers.is_empty());
    }

    #[test]
    fn phases_accumulate_calls_work_and_wall() {
        let _g = isolated();
        {
            let _p = phase("unit/acc");
        }
        {
            let _p = phase("unit/acc");
        }
        work("unit/acc", "evals", 3);
        work("unit/acc", "evals", 4);
        work("unit/acc", "edges", 1);
        record("unit/acc/inner", 10, 1_000);
        set_enabled(false);
        let snap = snapshot();
        let acc = &snap.phases["unit/acc"];
        assert_eq!(acc.calls, 2);
        assert_eq!(acc.work["evals"], 7);
        assert_eq!(acc.work["edges"], 1);
        assert_eq!(snap.phases["unit/acc/inner"].calls, 10);
        assert_eq!(snap.phases["unit/acc/inner"].wall_ns, 1_000);
    }

    #[test]
    fn counters_text_is_deterministic_and_wall_free() {
        let _g = isolated();
        work("b/two", "units", 2);
        work("a/one", "zz", 9);
        work("a/one", "aa", 1);
        record("a/one", 5, 123_456);
        set_enabled(false);
        let text = snapshot().counters_text();
        assert_eq!(text, "a/one calls=5 aa=1 zz=9\nb/two calls=0 units=2\n");
        assert!(!text.contains("123"), "wall ns must never leak: {text}");
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let _g = isolated();
        record("p", 1, 100);
        record("p/a", 1, 30);
        record("p/b", 1, 20);
        record("p/a/deep", 1, 25); // grandchild: not subtracted from p
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.self_ns("p", &snap.phases["p"]), 50);
        assert_eq!(snap.self_ns("p/a", &snap.phases["p/a"]), 5);
        assert_eq!(snap.self_ns("p/b", &snap.phases["p/b"]), 20);
        let table = snap.table();
        assert!(table.contains("p/a/deep"), "{table}");
    }

    #[test]
    fn json_round_trips_through_from_value() {
        let _g = isolated();
        record("sim/run", 2, 5_000);
        work("sim/run", "cycles", 900);
        record("sim/run/route", 40, 2_000);
        work("sim/run/route", "routes", 40);
        push_worker_segments(vec![
            WorkerSegment {
                worker: 1,
                label: "task 1".into(),
                start_ns: 50,
                dur_ns: 10,
            },
            WorkerSegment {
                worker: 0,
                label: "task 0".into(),
                start_ns: 5,
                dur_ns: 20,
            },
        ]);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.workers[0].worker, 0, "segments sorted by worker");
        let doc = Value::parse(&snap.to_json()).expect("valid json");
        let back = ProfSnapshot::from_value(&doc).expect("round-trip");
        assert_eq!(back, snap);
        // The flame tree nests sim → run → route.
        let flame = doc.get("flame").expect("flame");
        let sim = &flame.get("children").unwrap().as_arr().unwrap()[0];
        assert_eq!(sim.get("name").unwrap().as_str(), Some("sim"));
        let run = &sim.get("children").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("wall_ns").unwrap().as_u64(), Some(5_000));
    }

    #[test]
    fn from_value_rejects_malformed_documents() {
        assert!(ProfSnapshot::from_value(&Value::parse("{}").unwrap()).is_err());
        let bad = Value::parse("{\"phases\":[{\"calls\":1}]}").unwrap();
        assert!(ProfSnapshot::from_value(&bad).is_err());
    }
}
