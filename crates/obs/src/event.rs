//! Flight-recorder events.
//!
//! One variant per micro-event the simulator can emit. Fields are plain
//! integers/chars (dimension index and `+`/`-` direction) so this crate
//! stays dependency-free and sits *below* `ebda-core` in the workspace
//! graph; the simulator converts its richer types at the emission site.

use crate::csv;
use crate::json;

/// The discriminant of an [`Event`], used for per-kind totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A packet entered the network at its source.
    Inject,
    /// A head flit won a downstream virtual channel.
    VcAlloc,
    /// A head-of-line flit wanted to move but had no credits.
    SwitchStall,
    /// A flit crossed a link.
    LinkTraverse,
    /// A packet's last flit left the network at its destination.
    Eject,
    /// A packet was torn down (e.g. severed by a link fault).
    Drop,
    /// The deadlock watchdog fired.
    Watchdog,
    /// One edge of the diagnosed circular wait.
    WaitFor,
}

impl EventKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::VcAlloc => "vc_alloc",
            EventKind::SwitchStall => "switch_stall",
            EventKind::LinkTraverse => "link_traverse",
            EventKind::Eject => "eject",
            EventKind::Drop => "drop",
            EventKind::Watchdog => "watchdog",
            EventKind::WaitFor => "wait_for",
        }
    }

    /// All kinds, in export order.
    pub const ALL: [EventKind; 8] = [
        EventKind::Inject,
        EventKind::VcAlloc,
        EventKind::SwitchStall,
        EventKind::LinkTraverse,
        EventKind::Eject,
        EventKind::Drop,
        EventKind::Watchdog,
        EventKind::WaitFor,
    ];
}

/// One recorded micro-event. All variants carry the cycle they occurred
/// in; topology positions are node ids, channel coordinates are
/// `(dim, dir, vc)` with `dir` one of `+`/`-`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A packet of `len` flits entered at `src` heading for `dst`.
    Inject {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
        /// Packet length in flits.
        len: usize,
    },
    /// The head of packet `pid` at `node` won output VC `(dim, dir, vc)`.
    VcAlloc {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
        /// Node where allocation happened.
        node: usize,
        /// Dimension index of the output channel.
        dim: u8,
        /// Direction of the output channel (`+` or `-`).
        dir: char,
        /// Virtual-channel index.
        vc: u8,
    },
    /// Packet `pid` stalled at `node` waiting for credits on
    /// `(dim, dir, vc)`.
    SwitchStall {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
        /// Node where the stall happened.
        node: usize,
        /// Dimension index of the starved output channel.
        dim: u8,
        /// Direction of the starved output channel.
        dir: char,
        /// Virtual-channel index.
        vc: u8,
    },
    /// Flit `flit` of packet `pid` left `from` towards `to`.
    LinkTraverse {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
        /// Flit index within the packet.
        flit: usize,
        /// Upstream node.
        from: usize,
        /// Downstream node.
        to: usize,
        /// Dimension index of the link.
        dim: u8,
        /// Direction of the link.
        dir: char,
        /// Virtual-channel index.
        vc: u8,
    },
    /// Packet `pid` fully left the network at `node`.
    Eject {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
        /// Destination node.
        node: usize,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// Packet `pid` was torn down mid-flight.
    Drop {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        pid: u64,
    },
    /// The watchdog declared the run deadlocked with `blocked` packets
    /// still in flight.
    Watchdog {
        /// Simulation cycle.
        cycle: u64,
        /// Packets still in flight.
        blocked: usize,
    },
    /// Packet `waiter` waits on packet `waits_on`; `label` is the
    /// human-readable reason (matches `Outcome::Deadlocked::wait_cycle`).
    WaitFor {
        /// Simulation cycle.
        cycle: u64,
        /// The blocked packet.
        waiter: u64,
        /// The packet it waits on.
        waits_on: u64,
        /// Human-readable wait description.
        label: String,
    },
}

impl Event {
    /// The cycle this event occurred in.
    pub fn cycle(&self) -> u64 {
        match self {
            Event::Inject { cycle, .. }
            | Event::VcAlloc { cycle, .. }
            | Event::SwitchStall { cycle, .. }
            | Event::LinkTraverse { cycle, .. }
            | Event::Eject { cycle, .. }
            | Event::Drop { cycle, .. }
            | Event::Watchdog { cycle, .. }
            | Event::WaitFor { cycle, .. } => *cycle,
        }
    }

    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Inject { .. } => EventKind::Inject,
            Event::VcAlloc { .. } => EventKind::VcAlloc,
            Event::SwitchStall { .. } => EventKind::SwitchStall,
            Event::LinkTraverse { .. } => EventKind::LinkTraverse,
            Event::Eject { .. } => EventKind::Eject,
            Event::Drop { .. } => EventKind::Drop,
            Event::Watchdog { .. } => EventKind::Watchdog,
            Event::WaitFor { .. } => EventKind::WaitFor,
        }
    }

    /// Serializes the event as one JSON object.
    pub fn to_json(&self) -> String {
        let kind = json::escape(self.kind().name());
        match self {
            Event::Inject {
                cycle,
                pid,
                src,
                dst,
                len,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid},\"src\":{src},\"dst\":{dst},\"len\":{len}}}"
            ),
            Event::VcAlloc {
                cycle,
                pid,
                node,
                dim,
                dir,
                vc,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid},\"node\":{node},\"dim\":{dim},\"dir\":{},\"vc\":{vc}}}",
                json::escape(&dir.to_string())
            ),
            Event::SwitchStall {
                cycle,
                pid,
                node,
                dim,
                dir,
                vc,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid},\"node\":{node},\"dim\":{dim},\"dir\":{},\"vc\":{vc}}}",
                json::escape(&dir.to_string())
            ),
            Event::LinkTraverse {
                cycle,
                pid,
                flit,
                from,
                to,
                dim,
                dir,
                vc,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid},\"flit\":{flit},\"from\":{from},\"to\":{to},\"dim\":{dim},\"dir\":{},\"vc\":{vc}}}",
                json::escape(&dir.to_string())
            ),
            Event::Eject {
                cycle,
                pid,
                node,
                latency,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid},\"node\":{node},\"latency\":{latency}}}"
            ),
            Event::Drop { cycle, pid } => {
                format!("{{\"kind\":{kind},\"cycle\":{cycle},\"pid\":{pid}}}")
            }
            Event::Watchdog { cycle, blocked } => {
                format!("{{\"kind\":{kind},\"cycle\":{cycle},\"blocked\":{blocked}}}")
            }
            Event::WaitFor {
                cycle,
                waiter,
                waits_on,
                label,
            } => format!(
                "{{\"kind\":{kind},\"cycle\":{cycle},\"waiter\":{waiter},\"waits_on\":{waits_on},\"label\":{}}}",
                json::escape(label)
            ),
        }
    }

    /// Header for [`Event::csv_row`] exports.
    pub const CSV_HEADER: &'static str =
        "kind,cycle,pid,src,dst,len,node,dim,dir,vc,flit,from,to,latency,blocked,waiter,waits_on,label";

    /// Serializes the event as one CSV row matching [`Event::CSV_HEADER`];
    /// fields that do not apply to this kind are left empty.
    pub fn csv_row(&self) -> String {
        let mut cols: Vec<String> = vec![String::new(); 18];
        cols[0] = self.kind().name().to_string();
        cols[1] = self.cycle().to_string();
        match self {
            Event::Inject {
                pid, src, dst, len, ..
            } => {
                cols[2] = pid.to_string();
                cols[3] = src.to_string();
                cols[4] = dst.to_string();
                cols[5] = len.to_string();
            }
            Event::VcAlloc {
                pid,
                node,
                dim,
                dir,
                vc,
                ..
            }
            | Event::SwitchStall {
                pid,
                node,
                dim,
                dir,
                vc,
                ..
            } => {
                cols[2] = pid.to_string();
                cols[6] = node.to_string();
                cols[7] = dim.to_string();
                cols[8] = dir.to_string();
                cols[9] = vc.to_string();
            }
            Event::LinkTraverse {
                pid,
                flit,
                from,
                to,
                dim,
                dir,
                vc,
                ..
            } => {
                cols[2] = pid.to_string();
                cols[7] = dim.to_string();
                cols[8] = dir.to_string();
                cols[9] = vc.to_string();
                cols[10] = flit.to_string();
                cols[11] = from.to_string();
                cols[12] = to.to_string();
            }
            Event::Eject {
                pid, node, latency, ..
            } => {
                cols[2] = pid.to_string();
                cols[6] = node.to_string();
                cols[13] = latency.to_string();
            }
            Event::Drop { pid, .. } => {
                cols[2] = pid.to_string();
            }
            Event::Watchdog { blocked, .. } => {
                cols[14] = blocked.to_string();
            }
            Event::WaitFor {
                waiter,
                waits_on,
                label,
                ..
            } => {
                cols[15] = waiter.to_string();
                cols[16] = waits_on.to_string();
                cols[17] = label.clone();
            }
        }
        csv::row(&cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn json_is_parseable_for_every_kind() {
        let events = [
            Event::Inject {
                cycle: 1,
                pid: 2,
                src: 3,
                dst: 4,
                len: 5,
            },
            Event::VcAlloc {
                cycle: 1,
                pid: 2,
                node: 3,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::SwitchStall {
                cycle: 1,
                pid: 2,
                node: 3,
                dim: 1,
                dir: '-',
                vc: 0,
            },
            Event::LinkTraverse {
                cycle: 1,
                pid: 2,
                flit: 0,
                from: 3,
                to: 4,
                dim: 0,
                dir: '+',
                vc: 1,
            },
            Event::Eject {
                cycle: 9,
                pid: 2,
                node: 4,
                latency: 8,
            },
            Event::Drop { cycle: 9, pid: 2 },
            Event::Watchdog {
                cycle: 100,
                blocked: 7,
            },
            Event::WaitFor {
                cycle: 100,
                waiter: 1,
                waits_on: 2,
                label: "p1 \"credit\" wait, stage\n2".into(),
            },
        ];
        for e in &events {
            let v = Value::parse(&e.to_json()).unwrap();
            assert_eq!(v.get("kind").unwrap().as_str().unwrap(), e.kind().name());
            assert_eq!(v.get("cycle").unwrap().as_u64().unwrap(), e.cycle());
            // Same number of CSV columns for every kind.
            let parsed = crate::csv::parse_line(&e.csv_row()).unwrap();
            assert_eq!(parsed.len(), Event::CSV_HEADER.split(',').count());
            assert_eq!(parsed[0], e.kind().name());
        }
    }

    #[test]
    fn wait_for_label_survives_csv_quoting() {
        let e = Event::WaitFor {
            cycle: 5,
            waiter: 10,
            waits_on: 11,
            label: "credits on X+, vc 1 \"owned\"".into(),
        };
        let parsed = crate::csv::parse_line(&e.csv_row()).unwrap();
        assert_eq!(parsed[17], "credits on X+, vc 1 \"owned\"");
    }
}
