//! A bounded ring buffer that keeps the most recent items.
//!
//! The flight recorder must run for millions of cycles without growing,
//! so the event log is a fixed-capacity ring: pushes past capacity evict
//! the oldest entry and bump a `dropped` counter, exactly like a hardware
//! trace buffer. Iteration is always oldest-to-newest.

use std::collections::VecDeque;

/// Fixed-capacity FIFO that evicts its oldest element when full.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an item, evicting the oldest if the ring is full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many items have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-to-newest over the retained items.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Removes all items (the dropped counter is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = RingBuffer::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingBuffer::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
