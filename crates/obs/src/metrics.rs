//! Live metrics: log-bucketed histograms, counters and gauges in a
//! process-wide [`MetricsRegistry`], rendered as Prometheus text
//! exposition format (version 0.0.4) for the `/metrics` endpoint in
//! [`crate::http`].
//!
//! The registry complements the flight recorder ([`crate::recorder`]) and
//! the telemetry spans ([`crate::telemetry`]): the recorder is a
//! post-mortem event log of *one* run, telemetry aggregates span timings,
//! and this module is the *live*, scrapeable view of a whole campaign —
//! thousands of simulations, sweep points or oracle artifacts — while it
//! executes.
//!
//! Like telemetry, the global registry is off by default: until
//! [`set_enabled`] is called every emission is a single relaxed atomic
//! load. Instrumented code batches locally (e.g. the sim engine fills one
//! [`Histogram`] per run) and flushes under one lock, so hot paths never
//! contend.
//!
//! Metric names follow Prometheus conventions:
//! `ebda_<area>_<thing>_<unit>[_total]`, lowercase, with labels for
//! per-series dimensions (`{span="..."}`, `{node="...",dim="..."}`).
//! docs/OBSERVABILITY.md lists the full vocabulary.
//!
//! Determinism: every cycle-derived family is byte-identical across
//! identical-seed runs. Wall-clock families (suffix `_ns`) are the one
//! exception; [`RenderOptions::deterministic`] omits them, which is what
//! the determinism tests and the `EBDA_METRICS_DETERMINISTIC` escape
//! hatch use.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of linear sub-buckets per power-of-two range (as a bit count):
/// 16 sub-buckets, bounding the relative quantile error at 1/16 = 6.25%.
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Returns the bucket index of a value under the log-linear scheme:
/// values below 16 get exact singleton buckets; every power-of-two range
/// `[2^k, 2^(k+1))` above is split into 16 equal linear sub-buckets.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let sub = (v >> (msb - SUB_BITS as u64)) & (SUB_BUCKETS - 1);
    ((msb - SUB_BITS as u64 + 1) * SUB_BUCKETS + sub) as usize
}

/// Inclusive upper bound of bucket `i` (the inverse of [`bucket_index`]).
pub fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let msb = i / SUB_BUCKETS + SUB_BITS as u64 - 1;
    let sub = i % SUB_BUCKETS;
    let width = 1u64 << (msb - SUB_BITS as u64);
    (1u64 << msb) + (sub + 1) * width - 1
}

/// A log-bucketed histogram of `u64` observations with exact count, sum,
/// min and max, and quantile estimation with at most 6.25% relative error
/// (exact below 16).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, grown on demand (index per [`bucket_index`]).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Records `n` identical observations.
    pub fn observe_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = bucket_index(v);
        if self.buckets.len() <= i {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q` in `[0, 1]` by nearest rank over bucket upper
    /// bounds, clamped to the observed `[min, max]`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The standard latency digest: (p50, p90, p99, p999, max).
    /// `None` when empty.
    pub fn digest(&self) -> Option<(u64, u64, u64, u64, u64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
            self.max,
        ))
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending order — the raw material of the exposition format.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// One metric series key: family name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A set of counters, gauges and log-bucketed histograms, addressable by
/// `(name, labels)` and renderable as Prometheus text exposition.
///
/// All methods take `&self`; one internal mutex serializes updates.
/// Instrumented hot paths should aggregate locally (a plain [`Histogram`]
/// or `u64`) and flush once via [`MetricsRegistry::merge_histogram`] /
/// [`MetricsRegistry::counter_add`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// Rendering switches for [`MetricsRegistry::render`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderOptions {
    /// Omit families that vary across identical-seed runs — wall-clock
    /// families (name ending in `_ns`) and the build-stamped
    /// `ebda_build_info` gauge — leaving only families that are
    /// byte-identical across identical-seed runs.
    pub deterministic: bool,
}

fn key(name: &str, labels: &[(&str, String)]) -> Key {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Adds `delta` to the counter series `(name, labels)`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, String)], delta: u64) {
        *self.lock().counters.entry(key(name, labels)).or_insert(0) += delta;
    }

    /// Sets the gauge series `(name, labels)` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, String)], value: f64) {
        self.lock().gauges.insert(key(name, labels), value);
    }

    /// Records one observation into the histogram series `(name, labels)`.
    pub fn observe(&self, name: &str, labels: &[(&str, String)], value: u64) {
        self.lock()
            .histograms
            .entry(key(name, labels))
            .or_default()
            .observe(value);
    }

    /// Folds a locally aggregated histogram into the series
    /// `(name, labels)` under one lock acquisition.
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, String)], h: &Histogram) {
        self.lock()
            .histograms
            .entry(key(name, labels))
            .or_default()
            .merge(h);
    }

    /// Reads a counter series back (0 when absent) — for tests and the
    /// terminal monitor.
    pub fn counter_value(&self, name: &str, labels: &[(&str, String)]) -> u64 {
        self.lock()
            .counters
            .get(&key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Clones a histogram series, `None` when absent.
    pub fn histogram(&self, name: &str, labels: &[(&str, String)]) -> Option<Histogram> {
        self.lock().histograms.get(&key(name, labels)).cloned()
    }

    /// Clears every series (for tests and phase boundaries).
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    /// Renders the registry in Prometheus text exposition format 0.0.4:
    /// one `# TYPE` line per family, series sorted by name then labels, so
    /// identical registry contents produce byte-identical text.
    pub fn render(&self, opts: RenderOptions) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let skip =
            |name: &str| opts.deterministic && (name.ends_with("_ns") || name == "ebda_build_info");

        let mut last_family = String::new();
        for ((name, labels), value) in &inner.counters {
            if skip(name) {
                continue;
            }
            if *name != last_family {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_family.clone_from(name);
            }
            let _ = writeln!(out, "{name}{} {value}", render_labels(labels, None));
        }
        last_family.clear();
        for ((name, labels), value) in &inner.gauges {
            if skip(name) {
                continue;
            }
            if *name != last_family {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_family.clone_from(name);
            }
            let _ = writeln!(
                out,
                "{name}{} {}",
                render_labels(labels, None),
                render_f64(*value)
            );
        }
        last_family.clear();
        for ((name, labels), h) in &inner.histograms {
            if skip(name) {
                continue;
            }
            if *name != last_family {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_family.clone_from(name);
            }
            let mut cum = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cum += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    render_labels(labels, Some(&upper.to_string()))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                render_labels(labels, Some("+Inf"))
            );
            let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum());
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                render_labels(labels, None),
                h.count()
            );
        }
        out
    }
}

/// Renders a label set (plus an optional `le` bucket label) in exposition
/// syntax; empty label sets render as nothing.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an f64 the way Prometheus expects (`NaN`, `+Inf`, `-Inf`,
/// shortest decimal otherwise).
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// The process-global registry.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry behind the free functions and the `/metrics`
/// endpoint.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Globally enables or disables metrics collection (also enables the
/// telemetry spans feeding the `ebda_span_*` families).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to a global counter (no-op when disabled).
pub fn counter_add(name: &str, labels: &[(&str, String)], delta: u64) {
    if enabled() {
        global().counter_add(name, labels, delta);
    }
}

/// Sets a global gauge (no-op when disabled).
pub fn gauge_set(name: &str, labels: &[(&str, String)], value: f64) {
    if enabled() {
        global().gauge_set(name, labels, value);
    }
}

/// Records one observation into a global histogram (no-op when disabled).
pub fn observe(name: &str, labels: &[(&str, String)], value: u64) {
    if enabled() {
        global().observe(name, labels, value);
    }
}

/// Folds a local histogram into a global one (no-op when disabled).
pub fn merge_histogram(name: &str, labels: &[(&str, String)], h: &Histogram) {
    if enabled() {
        global().merge_histogram(name, labels, h);
    }
}

/// Renders the global registry plus the telemetry bridge (spans as
/// `ebda_span_*`, counters as `ebda_telemetry_total`, maxima as
/// `ebda_telemetry_max`) — the exact body the `/metrics` endpoint serves.
///
/// Honors the `EBDA_METRICS_DETERMINISTIC` environment variable (any
/// non-empty value) by dropping wall-clock (`_ns`) families.
pub fn render_global() -> String {
    let deterministic =
        std::env::var_os("EBDA_METRICS_DETERMINISTIC").is_some_and(|v| !v.is_empty());
    let opts = RenderOptions { deterministic };
    let mut out = global().render(opts);
    out.push_str(&render_telemetry(&crate::telemetry::snapshot(), opts));
    out
}

/// Renders a telemetry snapshot as exposition families: span invocation
/// counts (`ebda_span_invocations_total{span=...}`), span wall-clock
/// totals/maxima (`ebda_span_total_ns` / `ebda_span_max_ns`), named
/// counters (`ebda_telemetry_total{name=...}`) and high-water marks
/// (`ebda_telemetry_max{name=...}`).
pub fn render_telemetry(snap: &crate::telemetry::TelemetrySnapshot, opts: RenderOptions) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "# TYPE ebda_telemetry_total counter");
        for (name, v) in &snap.counters {
            let _ = writeln!(
                out,
                "ebda_telemetry_total{{name=\"{}\"}} {v}",
                escape_label(name)
            );
        }
    }
    if !snap.maxima.is_empty() {
        let _ = writeln!(out, "# TYPE ebda_telemetry_max gauge");
        for (name, v) in &snap.maxima {
            let _ = writeln!(
                out,
                "ebda_telemetry_max{{name=\"{}\"}} {v}",
                escape_label(name)
            );
        }
    }
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "# TYPE ebda_span_invocations_total counter");
        for (name, s) in &snap.spans {
            let _ = writeln!(
                out,
                "ebda_span_invocations_total{{span=\"{}\"}} {}",
                escape_label(name),
                s.count
            );
        }
        if !opts.deterministic {
            let _ = writeln!(out, "# TYPE ebda_span_total_ns counter");
            for (name, s) in &snap.spans {
                let _ = writeln!(
                    out,
                    "ebda_span_total_ns{{span=\"{}\"}} {}",
                    escape_label(name),
                    s.total_ns
                );
            }
            let _ = writeln!(out, "# TYPE ebda_span_max_ns gauge");
            for (name, s) in &snap.spans {
                let _ = writeln!(
                    out,
                    "ebda_span_max_ns{{span=\"{}\"}} {}",
                    escape_label(name),
                    s.max_ns
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition parsing — for `ebda monitor`, the loopback tests and the CI
// smoke job.
// ---------------------------------------------------------------------------

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (`..._bucket` / `_sum` / `_count` suffixes included).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Returns the value of a label, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition into samples, skipping comment and
/// blank lines. Returns an error naming the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|e| format!("bad value {v:?}: {e}"))?,
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels in {line:?}"))?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (k, after) = rest
            .split_once("=\"")
            .ok_or_else(|| format!("bad label syntax near {rest:?}"))?;
        // Find the closing quote, honoring backslash escapes.
        let mut val = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, e)) => val.push(e),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value near {after:?}"))?;
        labels.push((k.trim_matches(',').trim().to_string(), val));
        rest = after[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Reconstructs a quantile from parsed cumulative `_bucket` samples —
/// `(le, cumulative count)` pairs, `le = +Inf` included — mirroring
/// [`Histogram::quantile`] on the consumer side. `None` when empty.
///
/// Edge behavior is pinned: `q <= 0.0` returns the histogram minimum
/// bound (the `le` of the first occupied bucket) and `q >= 1.0` the
/// recorded max bound (the `le` of the last occupied bucket). Mass that
/// spilled past every finite edge into the `+Inf` bucket clamps to the
/// largest finite `le`, the tightest bound the exposition still holds.
pub fn quantile_from_buckets(buckets: &[(f64, f64)], q: f64) -> Option<f64> {
    let mut sorted: Vec<(f64, f64)> = buckets.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le labels are ordered"));
    let total = sorted.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let mut finite_max = 0.0f64;
    if q <= 0.0 {
        for &(le, cum) in &sorted {
            if le.is_finite() {
                finite_max = le;
            }
            if cum > 0.0 {
                return Some(if le.is_finite() { le } else { finite_max });
            }
        }
        return Some(finite_max);
    }
    if q >= 1.0 {
        let mut last = 0.0f64;
        let mut prev = 0.0f64;
        for &(le, cum) in &sorted {
            if cum > prev {
                last = if le.is_finite() { le } else { finite_max };
            }
            if le.is_finite() {
                finite_max = le;
            }
            prev = cum;
        }
        return Some(last);
    }
    // `max`/`min` instead of `clamp`: a fractional total below one (a
    // mid-write scrape) must not trip clamp's `min <= max` assertion.
    let rank = (q * total).ceil().max(1.0).min(total);
    for &(le, cum) in &sorted {
        if le.is_finite() {
            finite_max = le;
        }
        if cum >= rank {
            return Some(if le.is_finite() { le } else { finite_max });
        }
    }
    Some(finite_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        for v in [
            0u64,
            1,
            7,
            15,
            16,
            17,
            31,
            32,
            100,
            255,
            256,
            1000,
            1 << 20,
            u64::MAX / 2,
        ] {
            let i = bucket_index(v);
            assert!(
                v <= bucket_upper(i),
                "v={v} i={i} upper={}",
                bucket_upper(i)
            );
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v={v} below bucket {i}");
            }
        }
        // Indices are monotone in the value.
        let mut prev = 0;
        for v in 0..10_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn histogram_digest_and_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        assert!((468..=532).contains(&p50), "p50={p50}"); // 6.25% band
        assert_eq!(h.quantile(1.0), Some(1000));
        assert!(Histogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn exposition_roundtrips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.counter_add("ebda_test_total", &[("kind", "a\"b".into())], 3);
        reg.gauge_set("ebda_test_gauge", &[], 1.5);
        reg.observe("ebda_test_hist", &[], 7);
        let text = reg.render(RenderOptions::default());
        let samples = parse_exposition(&text).unwrap();
        let c = samples
            .iter()
            .find(|s| s.name == "ebda_test_total")
            .unwrap();
        assert_eq!(c.value, 3.0);
        assert_eq!(c.label("kind"), Some("a\"b"));
        assert!(samples.iter().any(|s| s.name == "ebda_test_hist_count"));
    }

    #[test]
    fn quantile_from_buckets_pins_both_edges() {
        let b = [(1.0, 2.0), (4.0, 5.0), (f64::INFINITY, 5.0)];
        // q=0 is the histogram minimum bound, q=1 the recorded max bound.
        assert_eq!(quantile_from_buckets(&b, 0.0), Some(1.0));
        assert_eq!(quantile_from_buckets(&b, 1.0), Some(4.0));
        // The mid-range path is untouched: rank 3 of 5 lands in (1, 4].
        assert_eq!(quantile_from_buckets(&b, 0.5), Some(4.0));
        // A leading empty bucket is not the minimum.
        let gap = [(1.0, 0.0), (4.0, 3.0), (f64::INFINITY, 3.0)];
        assert_eq!(quantile_from_buckets(&gap, 0.0), Some(4.0));
        // A trailing empty finite bucket is not the max.
        let tail = [(1.0, 2.0), (4.0, 5.0), (8.0, 5.0), (f64::INFINITY, 5.0)];
        assert_eq!(quantile_from_buckets(&tail, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_from_buckets_clamps_inf_spill_to_finite_edges() {
        // Part of the mass lies past every finite edge: q=1 degrades to
        // the largest finite bound, the tightest statement still true.
        let spill = [(1.0, 2.0), (4.0, 4.0), (f64::INFINITY, 6.0)];
        assert_eq!(quantile_from_buckets(&spill, 1.0), Some(4.0));
        // All mass in +Inf: both edges degrade to the largest finite le.
        let inf_only = [(2.0, 0.0), (f64::INFINITY, 3.0)];
        assert_eq!(quantile_from_buckets(&inf_only, 0.0), Some(2.0));
        assert_eq!(quantile_from_buckets(&inf_only, 1.0), Some(2.0));
    }

    #[test]
    fn quantile_from_buckets_handles_empty_and_fractional_totals() {
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
        let empty = [(1.0, 0.0), (f64::INFINITY, 0.0)];
        assert_eq!(quantile_from_buckets(&empty, 0.0), None);
        assert_eq!(quantile_from_buckets(&empty, 1.0), None);
        // A fractional sub-one total (a scrape racing a writer) must not
        // panic in the rank computation.
        let frac = [(1.0, 0.25), (f64::INFINITY, 0.25)];
        assert_eq!(quantile_from_buckets(&frac, 0.5), Some(1.0));
    }
}
