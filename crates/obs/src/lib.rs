//! # ebda-obs — flight-recorder telemetry for the EbDa reproduction
//!
//! A zero-dependency observability layer shared by every crate in the
//! workspace:
//!
//! * [`Recorder`] — a bounded ring-buffer **event recorder** capturing the
//!   micro-events of a simulation run (injection, VC allocation, switch
//!   stalls, link traversals, ejection, drops, watchdog trips and the
//!   structured wait-for edges of a diagnosed deadlock) plus **periodic
//!   time-series samples** of channel occupancy, credit stalls and
//!   in-flight packet counts.
//! * [`telemetry`] — process-wide RAII timing **spans** and named
//!   **counters** that instrument the verification hot paths (Algorithm
//!   1/2 partitioning, CDG construction and cycle search) at negligible
//!   cost when disabled.
//! * [`metrics`] — a live **metrics registry** (log-bucketed histograms,
//!   counters, gauges) rendered as Prometheus text exposition, and
//!   [`http`] — the blocking `/metrics` + `/healthz` endpoint serving it
//!   while a sweep or oracle campaign runs.
//! * [`prof`] — a deterministic **self-profiler**: hierarchical phases
//!   (slash paths like `sim/run/route`) each recording wall nanoseconds
//!   *and* deterministic work-unit counters, plus per-worker busy
//!   timelines, exported as a phase table / flame JSON / Perfetto
//!   worker tracks and gated on by `bench_report --baseline`.
//! * [`json`] / [`csv`] — hand-rolled writers *and* parsers, so traces can
//!   be exported and round-tripped without pulling in serde (the build
//!   environment has no registry access).
//! * [`rng::Rng64`] — a splitmix64 PRNG giving the workspace deterministic
//!   randomness without the `rand` crate.
//! * [`coverage`] — deterministic, mergeable **design-space coverage
//!   maps** fed by the verdict paths and the simulator: obligations
//!   discharged, turn pairs admitted/denied, CDG edges visited, escape
//!   channels drained, GFP pairs enumerated and design-space bins hit.
//! * [`journey`] — **per-packet journey tracing**: a deterministic
//!   splitmix64 sampler picks packets whose full causal span tree
//!   (injection → per-hop VC allocation → channel hold → ejection/drop)
//!   is reconstructed from the recorder's event stream, and [`chrome`]
//!   exports those journeys as Chrome Trace Event Format JSON loadable
//!   in Perfetto or `chrome://tracing`.
//!
//! Everything in this crate is deterministic: identical inputs produce
//! byte-identical exports, which the test suites rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod coverage;
pub mod csv;
pub mod event;
pub mod http;
pub mod journey;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod ring;
pub mod rng;
pub mod telemetry;

pub use chrome::{TraceBuilder, TraceSummary};
pub use coverage::CoverageMap;
pub use event::{Event, EventKind};
pub use http::{http_get, MetricsServer};
pub use journey::{ChannelId, Journey, JourneyConfig, JourneyEnd, JourneyTracer};
pub use ledger::LedgerRecord;
pub use metrics::{Histogram, MetricsRegistry};
pub use prof::{PhaseStat, ProfSnapshot, WorkerSegment};
pub use recorder::{Recorder, RecorderConfig, Sample};
pub use ring::RingBuffer;
pub use rng::Rng64;
pub use telemetry::{counter_add, counter_max, span, Span, SpanStat, TelemetrySnapshot};
