//! Integration tests of the metrics layer: rendering determinism
//! (byte-identical exposition for identical operation sequences), the
//! golden Prometheus text format, and quantile reconstruction through the
//! zero-dependency exposition parser.

use ebda_obs::metrics::{parse_exposition, quantile_from_buckets, RenderOptions};
use ebda_obs::{Histogram, MetricsRegistry};

/// The fixed population behind the golden file: two labelled counter
/// series, a bare counter, a gauge, a label value that needs escaping,
/// and a histogram spanning the exact region (< 16) and two log buckets.
fn populate(reg: &MetricsRegistry) {
    reg.counter_add("ebda_demo_packets_total", &[("design", "xy".into())], 5);
    reg.counter_add("ebda_demo_packets_total", &[("design", "wf".into())], 7);
    reg.counter_add("ebda_demo_runs_total", &[], 3);
    reg.gauge_set("ebda_demo_utilization", &[("node", "3".into())], 0.25);
    reg.gauge_set("ebda_demo_note", &[("msg", "a\"b\\c".into())], 1.0);
    for v in [0u64, 1, 15, 16, 31, 100] {
        reg.observe("ebda_demo_latency_cycles", &[], v);
    }
}

/// Two registries fed the same operations render byte-identically, even
/// when labels arrive in a different order — series keys are sorted.
#[test]
fn identical_operations_render_byte_identical() {
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    populate(&a);
    populate(&b);
    a.counter_add(
        "ebda_demo_edges_total",
        &[("dim", "0".into()), ("dir", "+".into())],
        2,
    );
    b.counter_add(
        "ebda_demo_edges_total",
        &[("dir", "+".into()), ("dim", "0".into())],
        2,
    );
    let ra = a.render(RenderOptions::default());
    let rb = b.render(RenderOptions::default());
    assert_eq!(ra, rb);
    assert!(ra.contains("ebda_demo_edges_total{dim=\"0\",dir=\"+\"} 2"));
}

/// The deterministic render drops wall-clock (`_ns`) families and keeps
/// everything else, so identical-seed runs compare byte-for-byte.
#[test]
fn deterministic_render_skips_wall_clock_families() {
    let reg = MetricsRegistry::new();
    reg.counter_add("ebda_demo_elapsed_ns", &[], 123_456);
    reg.counter_add("ebda_demo_runs_total", &[], 1);
    reg.observe("ebda_demo_duration_ns", &[], 99);
    let full = reg.render(RenderOptions::default());
    let det = reg.render(RenderOptions {
        deterministic: true,
    });
    assert!(full.contains("ebda_demo_elapsed_ns"));
    assert!(full.contains("ebda_demo_duration_ns_count"));
    assert!(!det.contains("_ns"));
    assert!(det.contains("ebda_demo_runs_total 1"));
}

/// The exposition format is pinned by a checked-in golden file: counters,
/// gauges, label escaping, and sparse cumulative histogram buckets with
/// `+Inf`, `_sum` and `_count`.
#[test]
fn golden_prometheus_exposition() {
    let reg = MetricsRegistry::new();
    populate(&reg);
    let got = reg.render(RenderOptions::default());
    let want = include_str!("golden/metrics.txt");
    assert_eq!(
        got, want,
        "exposition drifted from crates/obs/tests/golden/metrics.txt"
    );
    // And the golden text itself parses back with the own parser.
    let samples = parse_exposition(want).expect("golden exposition parses");
    assert!(samples.iter().any(|s| {
        s.name == "ebda_demo_packets_total" && s.label("design") == Some("wf") && s.value == 7.0
    }));
    assert!(samples
        .iter()
        .any(|s| s.name == "ebda_demo_note" && s.label("msg") == Some("a\"b\\c")));
}

/// A scraper that only sees the rendered `_bucket` lines can reconstruct
/// quantiles within the histogram's 6.25% error bound.
#[test]
fn parsed_buckets_reproduce_histogram_quantiles() {
    let mut h = Histogram::new();
    for v in 1..=1000u64 {
        h.observe(v);
    }
    let reg = MetricsRegistry::new();
    reg.merge_histogram("ebda_demo_latency_cycles", &[], &h);
    let samples = parse_exposition(&reg.render(RenderOptions::default())).unwrap();
    let buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "ebda_demo_latency_cycles_bucket")
        .map(|s| {
            let le = match s.label("le").unwrap() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            };
            (le, s.value)
        })
        .collect();
    for q in [0.50, 0.90, 0.99, 0.999] {
        let direct = h.quantile(q).unwrap() as f64;
        let scraped = quantile_from_buckets(&buckets, q).unwrap();
        // The scraper sees bucket upper bounds only (no min/max clamp), so
        // allow one bucket width of slack on top of the shared 6.25% bound.
        assert!(
            (scraped - direct).abs() <= direct * 0.0625 + 1.0,
            "q={q}: scraped {scraped} vs direct {direct}"
        );
    }
    assert_eq!(quantile_from_buckets(&buckets, 0.0), Some(1.0));
}
