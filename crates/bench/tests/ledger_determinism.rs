//! End-to-end run-ledger guarantees: both campaign kinds write
//! byte-identical ledgers at every thread count, and every appended
//! record's certificate or witness passes the independent checker —
//! the library-level half of CI's `ledger-smoke` job.

use ebda_corpus::{families, run_corpus_campaign, CorpusCampaignConfig, CorpusEntry};
use ebda_obs::ledger;
use ebda_oracle::differential::{run_campaign, CampaignConfig};
use ebda_oracle::verdict::Mutation;
use ebda_oracle::Provenance;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ebda-ledger-det-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Every record must re-validate without any prover: hash and verdict
/// agree with the embedded provenance, and the evidence checks out.
fn assert_all_records_check(path: &Path, expected: usize) {
    let records = ledger::read(path).unwrap();
    assert_eq!(
        records.len(),
        expected,
        "record count in {}",
        path.display()
    );
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.index, i as u64, "indices are append-ordered");
        let prov =
            Provenance::from_json(&rec.provenance).unwrap_or_else(|e| panic!("record #{i}: {e}"));
        assert_eq!(rec.hash, prov.hash_hex(), "record #{i} hash");
        assert_eq!(rec.verdict, prov.verdict_str(), "record #{i} verdict");
        prov.check()
            .unwrap_or_else(|e| panic!("record #{i} failed the checker: {e}"));
    }
}

#[test]
fn oracle_campaign_ledger_is_byte_identical_across_thread_counts() {
    let cfg = |threads: usize, ledger: PathBuf| CampaignConfig {
        seed: 7,
        budget: Duration::ZERO,
        min_configs: 40,
        max_configs: 40,
        max_nodes: 16,
        mutation: Mutation::None,
        journey_sample_rate: 1.0,
        threads,
        ledger: Some(ledger),
        coverage: None,
        coverage_guided: false,
    };
    let serial = tmp("oracle-1");
    let report = run_campaign(&cfg(1, serial.clone()));
    assert!(report.is_clean(), "{report}");
    assert_all_records_check(&serial, 40);

    let parallel = tmp("oracle-8");
    run_campaign(&cfg(8, parallel.clone()));
    assert_eq!(
        ledger::diff(&serial, &parallel).unwrap(),
        None,
        "oracle ledger bytes depend on the thread count"
    );
    std::fs::remove_file(&serial).ok();
    std::fs::remove_file(&parallel).ok();
}

#[test]
fn corpus_campaign_ledger_is_byte_identical_across_thread_counts() {
    let mut entries: Vec<CorpusEntry> = families::generate_family("mesh-xy");
    entries.truncate(2);
    entries.extend(
        families::generate_family("removed-dateline")
            .into_iter()
            .take(2),
    );

    let serial = tmp("corpus-1");
    let report = run_corpus_campaign(
        &entries,
        &CorpusCampaignConfig {
            threads: 1,
            ledger: Some(serial.clone()),
            ..CorpusCampaignConfig::default()
        },
    );
    assert!(report.is_clean(), "{report}");
    assert_all_records_check(&serial, entries.len());

    let parallel = tmp("corpus-8");
    run_corpus_campaign(
        &entries,
        &CorpusCampaignConfig {
            threads: 8,
            ledger: Some(parallel.clone()),
            ..CorpusCampaignConfig::default()
        },
    );
    assert_eq!(
        ledger::diff(&serial, &parallel).unwrap(),
        None,
        "corpus ledger bytes depend on the thread count"
    );
    std::fs::remove_file(&serial).ok();
    std::fs::remove_file(&parallel).ok();
}

#[test]
fn appends_accumulate_across_campaigns() {
    // One file fed by both campaign kinds: indices keep counting up and
    // everything still checks — the append-only contract.
    let path = tmp("mixed");
    run_campaign(&CampaignConfig {
        seed: 11,
        budget: Duration::ZERO,
        min_configs: 5,
        max_configs: 5,
        max_nodes: 12,
        mutation: Mutation::None,
        journey_sample_rate: 1.0,
        threads: 0,
        ledger: Some(path.clone()),
        coverage: None,
        coverage_guided: false,
    });
    let entries: Vec<CorpusEntry> = families::generate_family("mesh-xy")
        .into_iter()
        .take(2)
        .collect();
    run_corpus_campaign(
        &entries,
        &CorpusCampaignConfig {
            ledger: Some(path.clone()),
            ..CorpusCampaignConfig::default()
        },
    );
    assert_all_records_check(&path, 7);
    let records = ledger::read(&path).unwrap();
    assert_eq!(records[4].source, "oracle");
    assert_eq!(records[5].source, "corpus");
    std::fs::remove_file(&path).ok();
}
