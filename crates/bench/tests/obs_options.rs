//! Table-driven coverage of the shared observability flag parser
//! (`ebda_bench::trace::ObsOptions`): flag extraction, environment
//! fallbacks, flag-over-env precedence, and loud failure on malformed
//! or value-less flags.

use ebda_bench::trace::ObsOptions;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes every test that reads or writes `EBDA_*` variables:
/// integration tests share one process, and `ObsOptions::parse` falls
/// back to the environment for most flags.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// One happy-path row: input argv → expected fields and leftover argv.
struct Case {
    name: &'static str,
    args: &'static str,
    trace: Option<&'static str>,
    journey: Option<&'static str>,
    rate: f64,
    metrics_addr: Option<&'static str>,
    linger: u64,
    profile: Option<&'static str>,
    leftover: &'static str,
}

#[test]
fn flag_extraction_table() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cases = [
        Case {
            name: "no flags: everything defaults, argv untouched",
            args: "run --quick",
            trace: None,
            journey: None,
            rate: 1.0,
            metrics_addr: None,
            linger: 0,
            profile: None,
            leftover: "run --quick",
        },
        Case {
            name: "trace alone",
            args: "--trace-out /tmp/t.json",
            trace: Some("/tmp/t.json"),
            journey: None,
            rate: 1.0,
            metrics_addr: None,
            linger: 0,
            profile: None,
            leftover: "",
        },
        Case {
            name: "profile alone",
            args: "--profile-out /tmp/p.json run",
            trace: None,
            journey: None,
            rate: 1.0,
            metrics_addr: None,
            linger: 0,
            profile: Some("/tmp/p.json"),
            leftover: "run",
        },
        Case {
            name: "journey alone keeps the default sample rate",
            args: "work --journey-out /tmp/j.json",
            trace: None,
            journey: Some("/tmp/j.json"),
            rate: 1.0,
            metrics_addr: None,
            linger: 0,
            profile: None,
            leftover: "work",
        },
        Case {
            name: "journey with an explicit sample rate",
            args: "--journey-sample-rate 0.25 --journey-out j.json",
            trace: None,
            journey: Some("j.json"),
            rate: 0.25,
            metrics_addr: None,
            linger: 0,
            profile: None,
            leftover: "",
        },
        Case {
            name: "a sample rate without a journey path is still parsed",
            args: "--journey-sample-rate 0.5",
            trace: None,
            journey: None,
            rate: 0.5,
            metrics_addr: None,
            linger: 0,
            profile: None,
            leftover: "",
        },
        Case {
            name: "all flags at once, positionals preserved in order",
            args: "a --trace-out t.csv --journey-out j.json --journey-sample-rate 0.5 \
                   --metrics-addr 127.0.0.1:0 --metrics-linger 3 --profile-out p.json b",
            trace: Some("t.csv"),
            journey: Some("j.json"),
            rate: 0.5,
            metrics_addr: Some("127.0.0.1:0"),
            linger: 3,
            profile: Some("p.json"),
            leftover: "a b",
        },
    ];
    for c in &cases {
        let mut args = argv(c.args);
        let obs = ObsOptions::parse(&mut args);
        assert_eq!(obs.trace, c.trace.map(PathBuf::from), "{}", c.name);
        assert_eq!(obs.journey, c.journey.map(PathBuf::from), "{}", c.name);
        assert_eq!(obs.journey_sample_rate, c.rate, "{}", c.name);
        assert_eq!(obs.metrics_addr.as_deref(), c.metrics_addr, "{}", c.name);
        assert_eq!(obs.metrics_linger, c.linger, "{}", c.name);
        assert_eq!(obs.profile, c.profile.map(PathBuf::from), "{}", c.name);
        assert_eq!(args, argv(c.leftover), "{}", c.name);
    }
}

#[test]
fn env_fallbacks_and_flag_precedence() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let vars = [
        ("EBDA_TRACE", "/tmp/env-trace.json"),
        ("EBDA_JOURNEY_OUT", "/tmp/env-journey.json"),
        ("EBDA_JOURNEY_SAMPLE_RATE", "0.125"),
        ("EBDA_METRICS_ADDR", "127.0.0.1:9"),
        ("EBDA_PROFILE_OUT", "/tmp/env-profile.json"),
    ];
    for (k, v) in vars {
        std::env::set_var(k, v);
    }

    // No flags: every field falls back to its variable.
    let env_only = ObsOptions::parse(&mut argv("work"));
    assert_eq!(env_only.trace, Some(PathBuf::from("/tmp/env-trace.json")));
    assert_eq!(
        env_only.journey,
        Some(PathBuf::from("/tmp/env-journey.json"))
    );
    assert_eq!(env_only.journey_sample_rate, 0.125);
    assert_eq!(env_only.metrics_addr.as_deref(), Some("127.0.0.1:9"));
    assert_eq!(
        env_only.profile,
        Some(PathBuf::from("/tmp/env-profile.json"))
    );

    // Explicit flags win over the variables.
    let flags_win = ObsOptions::parse(&mut argv(
        "--trace-out /f/t.json --journey-out /f/j.json \
         --journey-sample-rate 0.75 --metrics-addr 127.0.0.1:0 --profile-out /f/p.json",
    ));
    assert_eq!(flags_win.trace, Some(PathBuf::from("/f/t.json")));
    assert_eq!(flags_win.journey, Some(PathBuf::from("/f/j.json")));
    assert_eq!(flags_win.journey_sample_rate, 0.75);
    assert_eq!(flags_win.metrics_addr.as_deref(), Some("127.0.0.1:0"));
    assert_eq!(flags_win.profile, Some(PathBuf::from("/f/p.json")));

    // Empty variables count as unset.
    for (k, _) in vars {
        std::env::set_var(k, "");
    }
    let empty_env = ObsOptions::parse(&mut argv(""));
    assert_eq!(empty_env.trace, None);
    assert_eq!(empty_env.journey, None);
    assert_eq!(empty_env.journey_sample_rate, 1.0);
    assert_eq!(empty_env.metrics_addr, None);
    assert_eq!(empty_env.profile, None);

    for (k, _) in vars {
        std::env::remove_var(k);
    }
}

#[test]
fn threads_flag_and_env_layering() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var("EBDA_THREADS");

    // Explicit flag wins and is removed from argv.
    let mut args = argv("work --threads 3 rest");
    let obs = ObsOptions::parse(&mut args);
    assert_eq!(obs.threads, 3);
    assert_eq!(args, argv("work rest"));

    // Without the flag, EBDA_THREADS decides.
    std::env::set_var("EBDA_THREADS", "5");
    assert_eq!(ObsOptions::parse(&mut argv("work")).threads, 5);

    // Flag beats the variable.
    assert_eq!(ObsOptions::parse(&mut argv("--threads 2")).threads, 2);
    std::env::remove_var("EBDA_THREADS");

    // Neither: hardware parallelism, and always at least one worker.
    let fallback = ObsOptions::parse(&mut argv("")).threads;
    assert_eq!(fallback, ebda_par::available());
    assert!(fallback >= 1);
}

/// Malformed input must panic with the offending flag named — these are
/// explicitly requested observability layers, so silent misparses would
/// lose data the user asked for.
#[test]
fn malformed_flags_panic_with_the_flag_named() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cases: [(&str, &str); 11] = [
        ("--trace-out", "--trace-out"),
        ("--profile-out", "--profile-out"),
        ("--journey-out", "--journey-out"),
        ("--journey-sample-rate", "--journey-sample-rate"),
        ("--metrics-addr", "--metrics-addr"),
        ("--metrics-linger", "--metrics-linger"),
        ("--journey-sample-rate nope", "[0, 1]"),
        ("--journey-sample-rate 1.5", "[0, 1]"),
        ("--threads", "--threads"),
        ("--threads zero", "--threads needs a positive integer"),
        ("--threads 0", "--threads needs a positive integer"),
    ];
    for (args, expected) in cases {
        let mut args = argv(args);
        let err = catch_unwind(AssertUnwindSafe(|| ObsOptions::parse(&mut args)))
            .expect_err(&format!("{args:?} must be rejected"));
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains(expected), "{args:?}: panic said {msg:?}");
    }
}

/// A bad `--metrics-addr` parses fine but fails loudly at activation —
/// an explicitly requested endpoint must not fail silently.
#[test]
fn unbindable_metrics_addr_panics_at_activation() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut args = argv("--metrics-addr not-an-address");
    let mut obs = ObsOptions::parse(&mut args);
    assert_eq!(obs.metrics_addr.as_deref(), Some("not-an-address"));
    let err = catch_unwind(AssertUnwindSafe(|| obs.activate()))
        .expect_err("binding a malformed address must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("cannot serve metrics on not-an-address"),
        "panic said {msg:?}"
    );
}
