//! The self-profiler's headline contract, end to end through the `sweep`
//! binary: the deterministic work-unit counter tree is **byte-identical**
//! at every `--threads` value, and the written `--profile-out` file is a
//! valid Chrome trace with one track per worker.

use ebda_obs::json::Value;
use ebda_obs::ProfSnapshot;
use std::path::PathBuf;
use std::process::Command;

/// Runs `sweep --quick --threads N --profile-out <tmp>` and returns the
/// parsed snapshot plus the raw file text.
fn profiled_sweep(threads: usize) -> (ProfSnapshot, String) {
    let path = std::env::temp_dir().join(format!("ebda-prof-det-{threads}.json"));
    let status = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args([
            "--quick",
            "--threads",
            &threads.to_string(),
            "--profile-out",
            path.to_str().unwrap(),
        ])
        .env_remove("EBDA_THREADS")
        .env_remove("EBDA_PROFILE_OUT")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "sweep --threads {threads} failed");
    let text = std::fs::read_to_string(&path).expect("profile written");
    std::fs::remove_file(&path).ok();
    let doc = Value::parse(&text).expect("profile is JSON");
    let snap = ProfSnapshot::from_value(doc.get("ebdaProfile").expect("ebdaProfile key"))
        .expect("snapshot parses");
    (snap, text)
}

#[test]
fn work_unit_counters_are_byte_identical_across_thread_counts() {
    let (serial, _) = profiled_sweep(1);
    let (parallel, text) = profiled_sweep(8);

    // The deterministic artifact: same phases, same calls, same work
    // units, byte for byte. Wall-clock times are excluded by design.
    assert!(!serial.counters_text().is_empty(), "counters recorded");
    assert_eq!(
        serial.counters_text(),
        parallel.counters_text(),
        "work-unit counter tree must not depend on --threads"
    );

    // The sweep phases and the engine phases both show up.
    for phase in ["sweep/run", "sim/run", "sim/run/route", "sim/run/eject"] {
        assert!(serial.phases.contains_key(phase), "missing phase {phase}");
    }
    assert_eq!(serial.phases["sweep/run"].work["points"], 8);

    // The 8-thread profile is a loadable Chrome trace whose worker pid
    // carries one named thread track per worker.
    let summary = ebda_obs::chrome::validate(&text).expect("valid Trace Event Format");
    assert!(summary.tracks >= 1, "at least one worker track");
    assert!(text.contains("\"worker 0\""), "worker 0 track named");
    assert!(
        !parallel.workers.is_empty(),
        "parallel run records worker segments"
    );
    // Every sweep point is one busy segment, whichever worker won it
    // (on a loaded 1-CPU host one worker may legitimately take them all).
    assert_eq!(
        parallel.workers.len(),
        8,
        "one busy segment per quick-sweep point"
    );
}

#[test]
fn env_fallback_writes_the_profile_too() {
    let path: PathBuf = std::env::temp_dir().join("ebda-prof-env.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(["--quick", "--threads", "2"])
        .env_remove("EBDA_THREADS")
        .env("EBDA_PROFILE_OUT", path.to_str().unwrap())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn sweep");
    assert!(status.success());
    let text = std::fs::read_to_string(&path).expect("EBDA_PROFILE_OUT written");
    std::fs::remove_file(&path).ok();
    let doc = Value::parse(&text).expect("profile is JSON");
    assert!(doc.get("ebdaProfile").is_some());
}
