//! End-to-end determinism contract of the parallel execution layer: the
//! `sweep` binary must produce byte-identical CSV at every thread count
//! (flag or `EBDA_THREADS`), and one seed's quick-sweep output is pinned
//! as a golden file so "deterministic but silently different from last
//! release" cannot slip through either.
//!
//! Regenerate the golden file after an intentional engine change with:
//! `cargo run -p ebda-bench --bin sweep -- --quick > crates/bench/tests/golden/sweep_quick.csv`

use std::process::Command;

fn sweep_csv(args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    cmd.args(args);
    // Never inherit a thread count from the test runner's environment.
    cmd.env_remove("EBDA_THREADS");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run sweep");
    assert!(
        out.status.success(),
        "sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 csv")
}

#[test]
fn sweep_csv_is_byte_identical_across_thread_counts() {
    let serial = sweep_csv(&["--quick", "--threads", "1"], &[]);
    let parallel = sweep_csv(&["--quick", "--threads", "8"], &[]);
    let via_env = sweep_csv(&["--quick"], &[("EBDA_THREADS", "3")]);
    assert_eq!(serial, parallel, "--threads must not change the CSV");
    assert_eq!(serial, via_env, "EBDA_THREADS must not change the CSV");
}

#[test]
fn quick_sweep_matches_its_golden_file() {
    let golden = include_str!("golden/sweep_quick.csv");
    let now = sweep_csv(&["--quick", "--threads", "2"], &[]);
    for (i, (want, got)) in golden.lines().zip(now.lines()).enumerate() {
        assert_eq!(want, got, "sweep_quick.csv drifted at line {}", i + 1);
    }
    assert_eq!(golden, now, "sweep_quick.csv drifted in length");
}
