//! Snapshot tests of the table/figure regeneration binaries: each must
//! exit cleanly and print the paper-matching key lines. This pins the
//! reproduction outputs against regressions.

use std::process::Command;

fn run(bin: &str, exe: &str) -> String {
    let out = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn table1_reports_twelve_options() {
    let text = run("table1", env!("CARGO_BIN_EXE_table1"));
    assert!(text.contains("12 options generated, 12 distinct"));
    assert!(text.contains("X1+ X1- Y1+ -> Y1-"));
    assert!(text.contains("X1- Y1- -> X1+ Y1+")); // negative-first column 3
}

#[test]
fn table2_and_table3_enumerate() {
    let t2 = run("table2", env!("CARGO_BIN_EXE_table2"));
    assert!(t2.contains("all 36 three-partition options verified"));
    let t3 = run("table3", env!("CARGO_BIN_EXE_table3"));
    assert!(t3.contains("all 24 orderings verified deadlock-free"));
    assert!(t3.contains("reproduces XY routing (4 90-degree turns)"));
}

#[test]
fn table4_prints_the_odd_even_rows() {
    let text = run("table4", env!("CARGO_BIN_EXE_table4"));
    assert!(text.contains("12 90-degree turns in total"));
    // The paper's PA row: WNe, WSe, NeW, SeW in compass notation.
    assert!(text.contains("W1Ne1"), "missing PA turns in: {text}");
}

#[test]
fn table5_prints_thirty_turns() {
    let text = run("table5", env!("CARGO_BIN_EXE_table5"));
    assert!(text.contains("30 90-degree turns total (paper: 30)"));
    assert!(text.contains("verified deadlock-free on the partially connected"));
}

/// Exact golden-file snapshots of the table binaries. The key-line checks
/// above survive layout churn; these do not — any byte of drift in a
/// table's output fails with the first differing line. Regenerate a
/// snapshot with e.g.
/// `cargo run --release -p ebda-bench --bin table1 > crates/bench/tests/golden/table1.txt`
/// after verifying the new output is intentional.
#[test]
fn table_outputs_match_their_golden_files() {
    for (bin, exe, golden) in [
        (
            "table1",
            env!("CARGO_BIN_EXE_table1"),
            include_str!("golden/table1.txt"),
        ),
        (
            "table2",
            env!("CARGO_BIN_EXE_table2"),
            include_str!("golden/table2.txt"),
        ),
        (
            "table3",
            env!("CARGO_BIN_EXE_table3"),
            include_str!("golden/table3.txt"),
        ),
        (
            "table4",
            env!("CARGO_BIN_EXE_table4"),
            include_str!("golden/table4.txt"),
        ),
        (
            "table5",
            env!("CARGO_BIN_EXE_table5"),
            include_str!("golden/table5.txt"),
        ),
    ] {
        let text = run(bin, exe);
        if text == golden {
            continue;
        }
        let diff = text
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (got, want))| got != want);
        match diff {
            Some((i, (got, want))) => panic!(
                "{bin} drifted from its golden file at line {}:\n  got:  {got}\n  want: {want}",
                i + 1
            ),
            None => panic!(
                "{bin} drifted from its golden file: {} output lines vs {} golden lines",
                text.lines().count(),
                golden.lines().count()
            ),
        }
    }
}

#[test]
fn figures_print_their_paper_matches() {
    for (bin, exe, needle) in [
        ("fig3", env!("CARGO_BIN_EXE_fig3"), "E1S1, W1S1, S1E1, S1W1"),
        ("fig4", env!("CARGO_BIN_EXE_fig4"), "U-turns (9)"),
        (
            "fig5",
            env!("CARGO_BIN_EXE_fig5"),
            "north-last algorithm [18] — reproduced",
        ),
        (
            "fig6",
            env!("CARGO_BIN_EXE_fig6"),
            "no adaptiveness — reproduced",
        ),
        (
            "fig7",
            env!("CARGO_BIN_EXE_fig7"),
            "6 = (n+1)*2^(n-1) is the minimum",
        ),
        ("fig8", env!("CARGO_BIN_EXE_fig8"), "100 90-degree turns"),
        (
            "fig9",
            env!("CARGO_BIN_EXE_fig9"),
            "PC[X2* Z3+ Y1-]; PD[X3* Z3- Y2-]} — reproduced",
        ),
    ] {
        let text = run(bin, exe);
        assert!(
            text.contains(needle),
            "{bin} output missing {needle:?}:\n{text}"
        );
    }
}

#[test]
fn scalability_reports_the_counts() {
    let text = run("scalability", env!("CARGO_BIN_EXE_scalability"));
    assert!(text.contains("deadlock-free        : 12 (paper/Glass & Ni: 12)"));
    assert!(text.contains("unique under symmetry: 3"));
    assert!(text.contains("deadlock-free        : 176"));
    assert!(text.contains("12/16 combinations certifiable"));
}
