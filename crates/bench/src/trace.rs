//! Shared `--trace-out` / `EBDA_TRACE` wiring for the experiment binaries.
//!
//! Every simulation binary accepts `--trace-out <path>` (or the
//! `EBDA_TRACE` environment variable as a fallback) and, when set, runs
//! with a flight recorder attached and writes the trace there on exit:
//! `.csv` paths get the event log as CSV plus a `<stem>.samples.csv`
//! sibling with the time series; any other extension gets the full JSON
//! document (events + samples + totals + telemetry spans/counters).

use ebda_obs::{Recorder, RecorderConfig};
use std::path::{Path, PathBuf};

/// Extracts `--trace-out <path>` from `args` (removing both tokens), or
/// falls back to the `EBDA_TRACE` environment variable.
///
/// # Panics
///
/// Panics when `--trace-out` is given without a value.
pub fn trace_path(args: &mut Vec<String>) -> Option<PathBuf> {
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        assert!(i + 1 < args.len(), "--trace-out needs a path argument");
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(PathBuf::from(path));
    }
    std::env::var_os("EBDA_TRACE").map(PathBuf::from)
}

/// A recorder to attach when tracing was requested: `Some` iff `path` is.
pub fn recorder_for(path: Option<&PathBuf>) -> Option<Recorder> {
    path.map(|_| {
        ebda_obs::telemetry::set_enabled(true);
        Recorder::new(RecorderConfig::default())
    })
}

/// Writes the recorded trace to `path` in the format its extension picks.
///
/// # Panics
///
/// Panics when the file cannot be written — traces are explicitly
/// requested, so losing one silently would be worse.
pub fn write_trace(rec: &Recorder, path: &Path) {
    let is_csv = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    if is_csv {
        std::fs::write(path, rec.events_csv())
            .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
        let samples = path.with_extension("samples.csv");
        std::fs::write(&samples, rec.samples_csv())
            .unwrap_or_else(|e| panic!("write trace {}: {e}", samples.display()));
    } else {
        // Splice the telemetry snapshot into the recorder document so one
        // file carries events, samples and span/counter aggregates.
        let doc = rec.write_json();
        let body = doc
            .trim_end()
            .strip_suffix('}')
            .expect("recorder JSON ends with an object brace")
            .trim_end()
            .to_string();
        let merged = format!(
            "{body},\n  \"telemetry\": {}\n}}\n",
            ebda_obs::telemetry::snapshot().to_json()
        );
        std::fs::write(path, merged)
            .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
    }
    eprintln!("trace written to {}", path.display());
}

/// Writes only the telemetry snapshot (spans + counters) as JSON — the
/// export used by binaries that run many simulations and where a single
/// per-run event log would be meaningless.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_telemetry(path: &Path) {
    std::fs::write(path, ebda_obs::telemetry::snapshot().to_json())
        .unwrap_or_else(|e| panic!("write telemetry {}: {e}", path.display()));
    eprintln!("telemetry written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_obs::json::Value;
    use ebda_obs::Event;

    #[test]
    fn trace_out_flag_is_extracted() {
        let mut args = vec![
            "positional".to_string(),
            "--trace-out".to_string(),
            "/tmp/t.json".to_string(),
            "tail".to_string(),
        ];
        let path = trace_path(&mut args);
        assert_eq!(path, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(args, vec!["positional".to_string(), "tail".to_string()]);
    }

    #[test]
    fn recorder_only_when_requested() {
        assert!(recorder_for(None).is_none());
        assert!(recorder_for(Some(&PathBuf::from("x.json"))).is_some());
    }

    #[test]
    fn json_trace_roundtrips_with_telemetry() {
        let mut rec = Recorder::with_defaults();
        rec.record(Event::Inject {
            cycle: 1,
            pid: 0,
            src: 0,
            dst: 5,
            len: 4,
        });
        let dir = std::env::temp_dir();
        let path = dir.join("ebda-trace-test.json");
        write_trace(&rec, &path);
        let doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.get("events").unwrap().as_arr().unwrap().len() == 1);
        assert!(doc.get("telemetry").is_some());
        std::fs::remove_file(&path).ok();
    }
}
