//! Shared `--trace-out` / `EBDA_TRACE` wiring for the experiment binaries.
//!
//! Every simulation binary accepts `--trace-out <path>` (or the
//! `EBDA_TRACE` environment variable as a fallback) and, when set, runs
//! with a flight recorder attached and writes the trace there on exit:
//! `.csv` paths get the event log as CSV plus a `<stem>.samples.csv`
//! sibling with the time series; any other extension gets the full JSON
//! document (events + samples + totals + telemetry spans/counters).

use ebda_obs::{JourneyConfig, MetricsServer, Recorder, RecorderConfig, TraceBuilder};
use std::path::{Path, PathBuf};

/// Unified observability options shared by every binary: trace output
/// (`--trace-out <path>`, env `EBDA_TRACE`), packet-journey export
/// (`--journey-out <path>` / `--journey-sample-rate <p>`, env
/// `EBDA_JOURNEY_OUT` / `EBDA_JOURNEY_SAMPLE_RATE`), live metrics
/// endpoint (`--metrics-addr <host:port>`, env `EBDA_METRICS_ADDR`),
/// `--metrics-linger <secs>` (keep serving that long after the work is
/// done, so external scrapers can collect the final state), the
/// self-profiler (`--profile-out <path>`, env `EBDA_PROFILE_OUT`) and
/// the worker-thread count (`--threads N`, env `EBDA_THREADS`, default
/// hardware parallelism).
///
/// Typical binary shape:
///
/// ```no_run
/// let mut args: Vec<String> = std::env::args().skip(1).collect();
/// let mut obs = ebda_bench::trace::ObsOptions::parse(&mut args);
/// obs.activate();
/// // ... the actual work ...
/// obs.finish();
/// ```
#[derive(Debug)]
pub struct ObsOptions {
    /// Where to write the trace / telemetry snapshot, when requested.
    pub trace: Option<PathBuf>,
    /// Where to write the Chrome-trace packet-journey timeline, when
    /// requested (`--journey-out`, env `EBDA_JOURNEY_OUT`).
    pub journey: Option<PathBuf>,
    /// Fraction of packets whose journeys are traced, in `[0, 1]`
    /// (`--journey-sample-rate`, env `EBDA_JOURNEY_SAMPLE_RATE`;
    /// default 1.0 = every packet). Sampling is deterministic per
    /// packet id, so reruns trace the same set.
    pub journey_sample_rate: f64,
    /// Where to write the self-profiler report, when requested
    /// (`--profile-out`, env `EBDA_PROFILE_OUT`). The file is a
    /// Perfetto-loadable Chrome trace carrying the per-worker busy
    /// timeline, with the aggregated phase tree spliced in under the
    /// extra top-level `ebdaProfile` key (`ebda profile <file>` renders
    /// it as a table).
    pub profile: Option<PathBuf>,
    /// Address to serve `/metrics` on, when requested (port 0 allowed).
    pub metrics_addr: Option<String>,
    /// Seconds to keep the metrics endpoint up after [`ObsOptions::finish`].
    pub metrics_linger: u64,
    /// Worker threads for the parallel layers (`--threads N`, env
    /// `EBDA_THREADS`; default [`ebda_par::available`]). 1 means strictly
    /// serial execution; results are identical at every value.
    pub threads: usize,
    server: Option<MetricsServer>,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            trace: None,
            journey: None,
            journey_sample_rate: 1.0,
            profile: None,
            metrics_addr: None,
            metrics_linger: 0,
            threads: ebda_par::available(),
            server: None,
        }
    }
}

impl ObsOptions {
    /// Extracts the observability flags from `args` (removing the consumed
    /// tokens), falling back to the environment variables.
    ///
    /// # Panics
    ///
    /// Panics when a flag is given without a value or with a malformed one.
    pub fn parse(args: &mut Vec<String>) -> ObsOptions {
        let metrics_addr =
            take_value(args, "--metrics-addr").or_else(|| env_string("EBDA_METRICS_ADDR"));
        let metrics_linger = take_value(args, "--metrics-linger")
            .map(|v| v.parse().expect("--metrics-linger needs whole seconds"))
            .unwrap_or(0);
        let journey = take_value(args, "--journey-out")
            .or_else(|| env_string("EBDA_JOURNEY_OUT"))
            .map(PathBuf::from);
        let journey_sample_rate = take_value(args, "--journey-sample-rate")
            .or_else(|| env_string("EBDA_JOURNEY_SAMPLE_RATE"))
            .map(|v| {
                let rate: f64 = v
                    .parse()
                    .expect("--journey-sample-rate needs a number in [0, 1]");
                assert!(
                    (0.0..=1.0).contains(&rate),
                    "--journey-sample-rate needs a number in [0, 1]"
                );
                rate
            })
            .unwrap_or(1.0);
        let profile = take_value(args, "--profile-out")
            .or_else(|| env_string("EBDA_PROFILE_OUT"))
            .map(PathBuf::from);
        let threads = take_value(args, "--threads")
            .map(|v| {
                let n: usize = v.parse().expect("--threads needs a positive integer");
                assert!(n > 0, "--threads needs a positive integer");
                n
            })
            // EBDA_THREADS / hardware fallback lives in ebda-par so that
            // library callers resolve identically to the binaries.
            .unwrap_or_else(ebda_par::threads);
        ObsOptions {
            trace: trace_path(args),
            journey,
            journey_sample_rate,
            profile,
            metrics_addr,
            metrics_linger,
            threads,
            server: None,
        }
    }

    /// Enables the requested observability layers: telemetry spans when
    /// either tracing or metrics is on, the global metrics registry and
    /// the HTTP endpoint when a metrics address was given. Prints the
    /// bound address to stderr (`metrics: serving http://...`), which is
    /// how scripts discover a port-0 binding.
    ///
    /// # Panics
    ///
    /// Panics when the metrics address cannot be bound — an explicitly
    /// requested endpoint must not fail silently.
    pub fn activate(&mut self) {
        // Install the thread count process-wide so library entry points
        // that resolve via ebda_par::threads() see the flag too.
        ebda_par::set_threads(self.threads);
        if self.trace.is_some() || self.metrics_addr.is_some() {
            ebda_obs::telemetry::set_enabled(true);
        }
        if self.profile.is_some() {
            ebda_obs::prof::set_enabled(true);
        }
        if let Some(addr) = &self.metrics_addr {
            ebda_obs::metrics::set_enabled(true);
            // Identify the build on every scrape; excluded from
            // deterministic renders (its labels vary per commit).
            ebda_obs::metrics::global().gauge_set(
                "ebda_build_info",
                &[
                    ("git_rev", ebda_obs::ledger::git_rev()),
                    ("version", env!("CARGO_PKG_VERSION").to_string()),
                ],
                1.0,
            );
            let server = MetricsServer::serve(addr)
                .unwrap_or_else(|e| panic!("cannot serve metrics on {addr}: {e}"));
            eprintln!("metrics: serving http://{}/metrics", server.local_addr());
            self.server = Some(server);
        }
    }

    /// A recorder to attach when tracing or journey export was
    /// requested: `Some` iff [`ObsOptions::trace`] or
    /// [`ObsOptions::journey`] is. When journeys were requested the
    /// recorder comes back with a journey tracer already attached
    /// (see [`ObsOptions::journey_config`]).
    pub fn recorder(&self) -> Option<Recorder> {
        let mut rec = if self.trace.is_some() {
            recorder_for(self.trace.as_ref())
        } else {
            self.journey.as_ref().map(|_| Recorder::with_defaults())
        }?;
        if let Some(jcfg) = self.journey_config() {
            rec.enable_journeys(jcfg);
        }
        Some(rec)
    }

    /// The journey-tracer configuration implied by the flags: `Some`
    /// iff [`ObsOptions::journey`] is, carrying the sample rate.
    pub fn journey_config(&self) -> Option<JourneyConfig> {
        self.journey.as_ref().map(|_| JourneyConfig {
            sample_rate: self.journey_sample_rate,
            ..JourneyConfig::default()
        })
    }

    /// The bound metrics address, once [`ObsOptions::activate`] ran.
    pub fn bound_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// Ends the observability session: writes the self-profiler report
    /// when one was requested, keeps the metrics endpoint up for the
    /// configured linger window, then shuts it down.
    pub fn finish(&self) {
        if let Some(path) = &self.profile {
            write_profile(path);
        }
        if let Some(server) = &self.server {
            if self.metrics_linger > 0 {
                eprintln!(
                    "metrics: lingering {}s on http://{}/metrics",
                    self.metrics_linger,
                    server.local_addr()
                );
                std::thread::sleep(std::time::Duration::from_secs(self.metrics_linger));
            }
            server.shutdown();
        }
    }
}

/// Removes `--flag <value>` from `args` and returns the value.
///
/// # Panics
///
/// Panics when the flag is present without a value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    assert!(i + 1 < args.len(), "{flag} needs a value");
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// A non-empty environment variable as a String.
fn env_string(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

/// Extracts `--trace-out <path>` from `args` (removing both tokens), or
/// falls back to the `EBDA_TRACE` environment variable.
///
/// # Panics
///
/// Panics when `--trace-out` is given without a value.
pub fn trace_path(args: &mut Vec<String>) -> Option<PathBuf> {
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        assert!(i + 1 < args.len(), "--trace-out needs a path argument");
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(PathBuf::from(path));
    }
    std::env::var_os("EBDA_TRACE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// A recorder to attach when tracing was requested: `Some` iff `path` is.
pub fn recorder_for(path: Option<&PathBuf>) -> Option<Recorder> {
    path.map(|_| {
        ebda_obs::telemetry::set_enabled(true);
        Recorder::new(RecorderConfig::default())
    })
}

/// Writes the recorded trace to `path` in the format its extension picks.
///
/// # Panics
///
/// Panics when the file cannot be written — traces are explicitly
/// requested, so losing one silently would be worse.
pub fn write_trace(rec: &Recorder, path: &Path) {
    let is_csv = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    if is_csv {
        std::fs::write(path, rec.events_csv())
            .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
        let samples = path.with_extension("samples.csv");
        std::fs::write(&samples, rec.samples_csv())
            .unwrap_or_else(|e| panic!("write trace {}: {e}", samples.display()));
    } else {
        // Splice the telemetry snapshot into the recorder document so one
        // file carries events, samples and span/counter aggregates.
        let doc = rec.write_json();
        let body = doc
            .trim_end()
            .strip_suffix('}')
            .expect("recorder JSON ends with an object brace")
            .trim_end()
            .to_string();
        let merged = format!(
            "{body},\n  \"telemetry\": {}\n}}\n",
            ebda_obs::telemetry::snapshot().to_json()
        );
        std::fs::write(path, merged)
            .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
    }
    eprintln!("trace written to {}", path.display());
}

/// A small per-run recorder carrying only a journey tracer — the shape
/// sweep-style binaries attach to each simulated point when
/// `--journey-out` is set: a modest event ring (journeys themselves
/// are never evicted) and no periodic samples.
pub fn journey_recorder(cfg: JourneyConfig) -> Recorder {
    let mut rec = Recorder::new(RecorderConfig {
        capacity: 1024,
        sample_every: 0,
    });
    rec.enable_journeys(cfg);
    rec
}

/// Writes the packet journeys of `rec` as one Chrome-trace run labelled
/// `label` — load the file in Perfetto or `chrome://tracing`.
///
/// # Panics
///
/// Panics when `rec` has no journey tracer attached or the file cannot
/// be written — journeys are explicitly requested, so losing them
/// silently would be worse.
pub fn write_journey(rec: &Recorder, label: &str, path: &Path) {
    let tracer = rec
        .journeys()
        .expect("write_journey needs a journey-enabled recorder");
    let mut builder = TraceBuilder::new();
    builder.add_run(label, tracer);
    // When the self-profiler is on, render the worker busy timeline next
    // to the packet journeys so one Perfetto tab shows both.
    if ebda_obs::prof::enabled() {
        builder.add_worker_timeline("workers", &ebda_obs::prof::snapshot().workers);
    }
    std::fs::write(path, builder.finish())
        .unwrap_or_else(|e| panic!("write journey {}: {e}", path.display()));
    eprintln!(
        "journeys: {} traced ({} dropped at the cap) written to {}",
        tracer.journeys().len(),
        tracer.skipped(),
        path.display()
    );
}

/// Writes the self-profiler report to `path`: a Chrome-trace JSON whose
/// events are the per-worker busy segments (one Perfetto track per
/// worker) and whose extra top-level `ebdaProfile` key carries the full
/// aggregated phase snapshot — [`ebda_obs::ProfSnapshot::to_json`] —
/// so `ebda profile <path>` can render the table, the deterministic
/// counter tree, or the flame view without re-running anything.
///
/// # Panics
///
/// Panics when the file cannot be written — profiles are explicitly
/// requested, so losing one silently would be worse.
pub fn write_profile(path: &Path) {
    let snap = ebda_obs::prof::snapshot();
    let mut builder = TraceBuilder::new();
    builder.add_worker_timeline("workers", &snap.workers);
    std::fs::write(
        path,
        builder.finish_with_extra("ebdaProfile", &snap.to_json()),
    )
    .unwrap_or_else(|e| panic!("write profile {}: {e}", path.display()));
    eprintln!(
        "profile: {} phases, {} worker segments written to {}",
        snap.phases.len(),
        snap.workers.len(),
        path.display()
    );
}

/// Writes only the telemetry snapshot (spans + counters) as JSON — the
/// export used by binaries that run many simulations and where a single
/// per-run event log would be meaningless.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_telemetry(path: &Path) {
    std::fs::write(path, ebda_obs::telemetry::snapshot().to_json())
        .unwrap_or_else(|e| panic!("write telemetry {}: {e}", path.display()));
    eprintln!("telemetry written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_obs::json::Value;
    use ebda_obs::Event;

    #[test]
    fn obs_options_extract_all_flags_and_serve() {
        let mut args = vec![
            "work".to_string(),
            "--metrics-addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--metrics-linger".to_string(),
            "0".to_string(),
            "--trace-out".to_string(),
            "/tmp/t.json".to_string(),
        ];
        let mut obs = ObsOptions::parse(&mut args);
        assert_eq!(args, vec!["work".to_string()]);
        assert_eq!(obs.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(obs.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(obs.metrics_linger, 0);
        assert!(obs.bound_addr().is_none());
        obs.activate();
        let addr = obs.bound_addr().expect("bound after activate");
        let body = ebda_obs::http_get(&addr.to_string(), "/healthz").unwrap();
        assert!(body.starts_with("ok uptime_seconds="), "body {body:?}");
        obs.finish();
    }

    #[test]
    fn trace_out_flag_is_extracted() {
        let mut args = vec![
            "positional".to_string(),
            "--trace-out".to_string(),
            "/tmp/t.json".to_string(),
            "tail".to_string(),
        ];
        let path = trace_path(&mut args);
        assert_eq!(path, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(args, vec!["positional".to_string(), "tail".to_string()]);
    }

    #[test]
    fn recorder_only_when_requested() {
        assert!(recorder_for(None).is_none());
        assert!(recorder_for(Some(&PathBuf::from("x.json"))).is_some());
    }

    #[test]
    fn json_trace_roundtrips_with_telemetry() {
        let mut rec = Recorder::with_defaults();
        rec.record(Event::Inject {
            cycle: 1,
            pid: 0,
            src: 0,
            dst: 5,
            len: 4,
        });
        let dir = std::env::temp_dir();
        let path = dir.join("ebda-trace-test.json");
        write_trace(&rec, &path);
        let doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.get("events").unwrap().as_arr().unwrap().len() == 1);
        assert!(doc.get("telemetry").is_some());
        std::fs::remove_file(&path).ok();
    }
}
