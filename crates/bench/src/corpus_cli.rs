//! Driver behind `ebda corpus`: generate the labeled seed corpus, run the
//! regression campaign, print corpus statistics.
//!
//! Usage: `ebda corpus <generate|run|stats> [flags]`
//!
//! | subcommand | meaning |
//! |---|---|
//! | `generate --out <dir>` | generate every family, prove each label, write the corpus |
//! | `run <dir> [flags]` | check every entry against all four verdict paths |
//! | `stats <dir> [--json]` | print deterministic corpus statistics (`--json`: one canonical JSON document) |
//!
//! `run` flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--archive-to <dir>` | off | archive shrunk witnesses of mismatches as new labeled entries |
//! | `--mutate <name>` | none | break a checker (`dally-ignores-wrap`, `ebda-skips-theorem1`) |
//! | `--inject-mismatch` | off | strip the dateline from the first wrapped deadlock-free entry, keeping its label — the end-to-end catch/shrink/archive demo |
//! | `--expect-mismatch` | off | exit 0 iff a mismatch IS found (self-check mode) |
//! | `--shrink-budget <n>` | 400 | predicate evaluations spent shrinking each mismatch |
//! | `--threads <n>` | hardware | worker threads (`EBDA_THREADS`); report is byte-identical at every value |
//! | `--ledger <path>` | off | append one provenance-carrying run-ledger record per entry (`EBDA_LEDGER`); bytes are identical at every thread count |
//! | `--coverage-out <path>` | off | write the campaign's merged design-space coverage map as canonical JSON; bytes are identical at every thread count |
//! | `--incremental <on\|off>` | on | dirty-SCC incremental re-verification when shrinking mismatches (`EBDA_INCREMENTAL`); report, ledger and coverage bytes are identical either way |
//!
//! All campaign and stats output is deterministic: wall-clock timings go
//! to stderr only, so CI can diff stdout across thread counts. Exit code
//! 0 means the outcome matched the expectation (clean by default, caught
//! mismatch under `--expect-mismatch`), 1 otherwise, 2 for usage errors.

use std::path::PathBuf;

use crate::trace::{write_telemetry, ObsOptions};
use ebda_corpus::{families, store, CorpusCampaignConfig};
use ebda_oracle::shrink::DEFAULT_SHRINK_BUDGET;
use ebda_oracle::verdict::Mutation;

/// Removes `--flag value` from `args` and parses the value.
///
/// # Panics
///
/// Panics (with a usage message) when the flag has no or a malformed value.
fn take<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    assert!(i + 1 < args.len(), "{flag} needs a value");
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{flag}: cannot parse {raw:?}"),
    }
}

/// Removes a boolean `--flag` from `args`, returning whether it was there.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Parses `args` (without the program or subcommand name), runs the
/// requested corpus action, and returns the process exit code.
pub fn run(mut args: Vec<String>) -> i32 {
    if args.is_empty() {
        eprintln!("usage: ebda corpus <generate|run|stats> [flags]");
        return 2;
    }
    let action = args.remove(0);
    match action.as_str() {
        "generate" => generate(args),
        "run" => campaign(args),
        "stats" => stats(args),
        other => {
            eprintln!("unknown corpus action {other:?} (try generate, run, stats)");
            2
        }
    }
}

/// `ebda corpus generate --out <dir>`: generates all ten families, proves
/// every label at generation time, and writes the content-addressed files.
fn generate(mut args: Vec<String>) -> i32 {
    let out: PathBuf = match take::<PathBuf>(&mut args, "--out") {
        Some(dir) => dir,
        None => {
            eprintln!("corpus generate needs --out <dir>");
            return 2;
        }
    };
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        return 2;
    }
    let entries = families::generate_all();
    for entry in &entries {
        if let Err(e) = store::save_entry(&out, entry) {
            eprintln!("{e}");
            return 1;
        }
    }
    print!("{}", store::render_stats(&entries));
    println!("wrote {} entries to {}", entries.len(), out.display());
    0
}

/// `ebda corpus run <dir> [flags]`: the regression campaign.
fn campaign(mut args: Vec<String>) -> i32 {
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let archive_dir: Option<PathBuf> = take(&mut args, "--archive-to");
    let shrink_budget: usize = take(&mut args, "--shrink-budget").unwrap_or(DEFAULT_SHRINK_BUDGET);
    let mutation = match take::<String>(&mut args, "--mutate") {
        Some(name) => match Mutation::parse(&name) {
            Some(m) => m,
            None => {
                eprintln!(
                    "unknown mutation {name:?} (try dally-ignores-wrap, ebda-skips-theorem1)"
                );
                return 2;
            }
        },
        None => Mutation::None,
    };
    let inject_mismatch = take_switch(&mut args, "--inject-mismatch");
    let expect_mismatch = take_switch(&mut args, "--expect-mismatch");
    match take::<String>(&mut args, "--incremental").as_deref() {
        Some("on") => ebda_oracle::incr::set_enabled(true),
        Some("off") => ebda_oracle::incr::set_enabled(false),
        Some(other) => {
            eprintln!("--incremental: expected on|off, got {other:?}");
            return 2;
        }
        None => {}
    }
    let ledger = take::<String>(&mut args, "--ledger")
        .or_else(|| std::env::var("EBDA_LEDGER").ok().filter(|v| !v.is_empty()))
        .map(PathBuf::from);
    let coverage: Option<PathBuf> = take(&mut args, "--coverage-out");
    if let Some(path) = &ledger {
        // Register the ledger with the /ledger route of a live
        // --metrics-addr endpoint.
        ebda_obs::ledger::set_global_path(Some(path.clone()));
    }
    if let Some(path) = &coverage {
        // Same deal for the /coverage route.
        ebda_obs::coverage::set_global_path(Some(path.clone()));
    }
    let dir = match positional(&mut args) {
        Ok(dir) => dir,
        Err(code) => return code,
    };

    let mut entries = match store::load_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if inject_mismatch {
        let Some(target) = entries
            .iter()
            .position(|e| e.expected.is_free() && e.wrap.iter().any(|&w| w))
        else {
            eprintln!("--inject-mismatch needs a wrapped deadlock-free entry in the corpus");
            return 2;
        };
        let stripped = families::strip_dateline(&entries[target]);
        println!(
            "injected mismatch: {} replaced by {} (dateline removed, label kept)",
            entries[target].name, stripped.name
        );
        entries[target] = stripped;
    }
    if mutation != Mutation::None {
        println!("running with mutated checker: {mutation}");
    }

    let cfg = CorpusCampaignConfig {
        threads: obs.threads,
        mutation,
        shrink_budget,
        archive_dir,
        ledger: ledger.clone(),
        coverage: coverage.clone(),
    };
    let report = ebda_corpus::run_corpus_campaign(&entries, &cfg);
    print!("{report}");
    eprintln!("campaign finished in {} ms", report.elapsed_ms);
    if let Some(path) = &ledger {
        eprintln!(
            "ledger: {} verdicts appended to {} ({} threads)",
            report.entries,
            path.display(),
            obs.threads
        );
    }
    if let (Some(path), Some(map)) = (&coverage, &report.coverage) {
        eprintln!(
            "coverage: {} points written to {} (digest {})",
            map.total_points(),
            path.display(),
            map.digest()
        );
    }
    if let Some(path) = &obs.trace {
        write_telemetry(path);
    }
    obs.finish();

    match (report.is_clean(), expect_mismatch) {
        (true, false) => 0,
        (false, true) => {
            println!("mismatch found, as expected");
            0
        }
        (false, false) => {
            eprintln!("FAIL: corpus labels were violated");
            1
        }
        (true, true) => {
            eprintln!("FAIL: expected a mismatch to be caught, but the campaign was clean");
            1
        }
    }
}

/// `ebda corpus stats <dir> [--json]`: deterministic statistics for a
/// corpus, as human-readable text or one canonical JSON document.
fn stats(mut args: Vec<String>) -> i32 {
    let json = take_switch(&mut args, "--json");
    let dir = match positional(&mut args) {
        Ok(dir) => dir,
        Err(code) => return code,
    };
    match store::load_dir(&dir) {
        Ok(entries) => {
            if json {
                print!("{}", store::render_stats_json(&entries));
            } else {
                print!("{}", store::render_stats(&entries));
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Extracts the single positional corpus-directory argument.
fn positional(args: &mut Vec<String>) -> Result<PathBuf, i32> {
    if args.len() != 1 || args[0].starts_with("--") {
        eprintln!("expected exactly one corpus directory, got: {args:?}");
        return Err(2);
    }
    Ok(PathBuf::from(args.remove(0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn seeded_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ebda-corpus-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let entries = families::generate_family("torus-dateline");
        for e in &entries {
            store::save_entry(&dir, e).unwrap();
        }
        dir
    }

    #[test]
    fn generate_then_stats_then_run_are_clean() {
        let dir = seeded_dir("clean");
        assert_eq!(run(argv(&format!("stats {}", dir.display()))), 0);
        assert_eq!(run(argv(&format!("run {}", dir.display()))), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_mismatch_is_caught_and_archived() {
        let dir = seeded_dir("inject");
        let archive = dir.join("archive");
        let args = format!(
            "run {} --inject-mismatch --expect-mismatch --archive-to {}",
            dir.display(),
            archive.display()
        );
        assert_eq!(run(argv(&args)), 0);
        let archived = store::load_dir(&archive).unwrap();
        assert_eq!(archived.len(), 1);
        assert_eq!(archived[0].family, "witness");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_json_mode_and_coverage_out_produce_canonical_files() {
        let dir = seeded_dir("json-cov");
        assert_eq!(run(argv(&format!("stats {} --json", dir.display()))), 0);
        let cov = dir.join("coverage.json");
        assert_eq!(
            run(argv(&format!(
                "run {} --coverage-out {}",
                dir.display(),
                cov.display()
            ))),
            0
        );
        let map = ebda_obs::CoverageMap::read_file(&cov).unwrap();
        assert!(map.covered("design_bin") > 0);
        assert!(map.key().starts_with("corpus-"), "{}", map.key());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expect_mismatch_on_a_clean_corpus_fails() {
        let dir = seeded_dir("expect");
        assert_eq!(
            run(argv(&format!("run {} --expect-mismatch", dir.display()))),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_errors_exit_two() {
        assert_eq!(run(vec![]), 2);
        assert_eq!(run(argv("frobnicate")), 2);
        assert_eq!(run(argv("generate")), 2);
        assert_eq!(run(argv("run")), 2);
        assert_eq!(run(argv("run --mutate nonsense x")), 2);
    }
}
