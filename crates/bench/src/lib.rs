//! # ebda-bench — experiment harness for the EbDa reproduction
//!
//! One binary per paper table/figure regenerates the published artefact
//! (see `src/bin/`); the `benches/` targets measure construction,
//! verification and simulation costs with the zero-dependency harness in
//! [`harness`]. EXPERIMENTS.md in the repository root records
//! paper-vs-measured for each. Simulation binaries share the
//! `--trace-out` flight-recorder wiring in [`trace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_cli;
pub mod harness;
pub mod oracle_cli;
pub mod sweep_matrix;
pub mod trace;

use ebda_core::extract::{Extraction, Justification};
use ebda_core::{PartitionSeq, TurnKind};

/// Renders a channel in the paper's compact direction notation: `X1+` →
/// `E1`, `Y2-` → `S2`, `Z1+` → `U1`; parity classes keep their `e`/`o`
/// mark (`Ye1+` → `Ne1`).
pub fn compass(c: ebda_core::Channel) -> String {
    use ebda_core::{ChannelClass, Dimension, Direction};
    let letter = match (c.dim, c.dir) {
        (Dimension::X, Direction::Plus) => "E",
        (Dimension::X, Direction::Minus) => "W",
        (Dimension::Y, Direction::Plus) => "N",
        (Dimension::Y, Direction::Minus) => "S",
        (Dimension::Z, Direction::Plus) => "U",
        (Dimension::Z, Direction::Minus) => "D",
        _ => return c.to_string(),
    };
    let parity = match c.class {
        ChannelClass::AtParity { parity, .. } => parity.to_string(),
        // Coordinate-restricted classes keep the full channel notation.
        ChannelClass::AtCoord { .. } | ChannelClass::NotAtCoord { .. } => {
            return c.to_string();
        }
        ChannelClass::All => String::new(),
    };
    format!("{letter}{parity}{}", c.vc)
}

/// Renders a turn as the paper writes them: `E1N1`, `U4D4`, `NeNo`, ….
pub fn compass_turn(t: ebda_core::Turn) -> String {
    format!("{}{}", compass(t.from), compass(t.to))
}

/// Prints one partition sequence in the `PA[..] → PB[..]` style of the
/// paper's tables.
pub fn table_entry(seq: &PartitionSeq) -> String {
    seq.partitions()
        .iter()
        .map(|p| {
            p.channels()
                .iter()
                .map(|&c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Prints the grouped per-theorem turn extraction of a design, mirroring
/// the layout of Figure 8 and Tables 4–5.
pub fn print_extraction(seq: &PartitionSeq, ex: &Extraction) {
    for (pi, _) in seq.partitions().iter().enumerate() {
        println!("Partition P{pi}: {}", seq.partitions()[pi]);
        let th1 = ex.turns_for(Justification::Theorem1 { partition: pi });
        if !th1.is_empty() {
            println!("  Theorem1 turns : {}", group(&th1, None));
        }
        let th2 = ex.turns_for(Justification::Theorem2 { partition: pi });
        if !th2.is_empty() {
            println!("  Theorem2 U/I   : {}", group(&th2, None));
        }
        for pj in 0..pi {
            let th3 = ex.turns_for(Justification::Theorem3 { from: pj, to: pi });
            if th3.is_empty() {
                continue;
            }
            println!(
                "  Theorem3 (P{pj}->P{pi}) 90deg: {}",
                group(&th3, Some(TurnKind::Ninety))
            );
            let u = group(&th3, Some(TurnKind::UTurn));
            if !u.is_empty() {
                println!("               U-turns: {u}");
            }
            let i = group(&th3, Some(TurnKind::ITurn));
            if !i.is_empty() {
                println!("               I-turns: {i}");
            }
        }
    }
    let c = ex.turn_set().counts();
    println!("TOTAL: {c}");
}

fn group(ts: &ebda_core::TurnSet, kind: Option<TurnKind>) -> String {
    ts.iter()
        .filter(|t| kind.is_none_or(|k| t.kind() == k))
        .map(compass_turn)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::{catalog, extract_turns, Channel, Turn};

    #[test]
    fn compass_notation_matches_the_paper() {
        assert_eq!(compass(Channel::parse("X1+").unwrap()), "E1");
        assert_eq!(compass(Channel::parse("X1-").unwrap()), "W1");
        assert_eq!(compass(Channel::parse("Y2+").unwrap()), "N2");
        assert_eq!(compass(Channel::parse("Z4-").unwrap()), "D4");
        assert_eq!(compass(Channel::parse("Ye1+").unwrap()), "Ne1");
        assert_eq!(compass(Channel::parse("T1+").unwrap()), "T1+");
    }

    #[test]
    fn compass_turn_formats() {
        let t = Turn::new(
            Channel::parse("X1+").unwrap(),
            Channel::parse("Y1-").unwrap(),
        );
        assert_eq!(compass_turn(t), "E1S1");
    }

    #[test]
    fn table_entry_strips_brackets() {
        let s = table_entry(&catalog::p3_west_first());
        assert_eq!(s, "X1- -> X1+ Y1+ Y1-");
    }

    #[test]
    fn print_extraction_runs() {
        let seq = catalog::north_last();
        let ex = extract_turns(&seq).unwrap();
        print_extraction(&seq, &ex);
    }
}
