//! Regenerates Table 4: the allowable turns of the Odd-Even turn model,
//! derived from the EbDa partitioning `PA = {X- Ye*} → PB = {X+ Yo*}`.

use ebda_bench::compass_turn;
use ebda_cdg::{verify_design, Topology};
use ebda_core::extract::Justification;
use ebda_core::{catalog, extract_turns, TurnKind, TurnSet};

fn row(ts: &TurnSet, kind: Option<TurnKind>) -> String {
    ts.iter()
        .filter(|t| kind.is_none_or(|k| t.kind() == k))
        .map(compass_turn)
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let seq = catalog::odd_even();
    println!("Odd-Even as an EbDa partitioning: {seq}");
    let ex = extract_turns(&seq).expect("valid design");

    let pa90 = ex.turns_for(Justification::Theorem1 { partition: 0 });
    let pa_u = ex.turns_for(Justification::Theorem2 { partition: 0 });
    let pb90 = ex.turns_for(Justification::Theorem1 { partition: 1 });
    let pb_u = ex.turns_for(Justification::Theorem2 { partition: 1 });
    let tr = ex.turns_for(Justification::Theorem3 { from: 0, to: 1 });

    println!("\nTable 4: allowable turns in Odd-Even");
    println!("{:-<78}", "");
    println!(
        "{:<16} | {:<34} | U- & I-turns",
        "extracting", "90-degree turns"
    );
    println!("{:-<78}", "");
    println!(
        "{:<16} | {:<34} | {}",
        "in PA",
        row(&pa90, None),
        row(&pa_u, None)
    );
    println!(
        "{:<16} | {:<34} | {}",
        "in PB",
        row(&pb90, None),
        row(&pb_u, None)
    );
    println!(
        "{:<16} | {:<34} | {} {}",
        "transition",
        row(&tr, Some(TurnKind::Ninety)),
        row(&tr, Some(TurnKind::UTurn)),
        row(&tr, Some(TurnKind::ITurn))
    );
    println!("{:-<78}", "");

    let c = ex.turn_set().counts();
    println!(
        "{} 90-degree turns in total (the paper: 12, split into odd/even \
         columns; adaptiveness level of west-first)",
        c.ninety
    );
    assert_eq!(c.ninety, 12);
    assert_eq!(pa90.len(), 4);
    assert_eq!(pb90.len(), 4);
    assert_eq!(tr.of_kind(TurnKind::Ninety).count(), 4);

    // Verify on meshes of both radix parities.
    for radix in [5usize, 6] {
        let report = verify_design(&Topology::mesh(&[radix, radix]), &seq).expect("valid");
        assert!(report.is_deadlock_free(), "{report}");
        println!("verified deadlock-free on {radix}x{radix}: {report}");
    }
}
