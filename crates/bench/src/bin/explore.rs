//! Design-space exploration (Section 5.3 operationalized): enumerate the
//! partitioning options a VC budget admits, classify each design's regions
//! and rank by adaptiveness — the table a designer would actually consult.
//!
//! Usage: `cargo run -p ebda-bench --bin explore [-- <vcs like 1,2>]`

//! `--trace-out <path>` (or `EBDA_TRACE`) additionally writes the
//! telemetry snapshot (Algorithm 1/2 + CDG spans and counters) as JSON.

use ebda_bench::trace::{write_telemetry, ObsOptions};
use ebda_cdg::{verify_design, Topology};
use ebda_core::adaptiveness::{adaptiveness_profile, region_classes, RegionClass};
use ebda_core::algorithm2::{derive_all, transition_reorderings};
use ebda_core::sets::{arrangement1, arrangement2, arrangement3};
use ebda_core::{extract_turns, PartitionSeq};
use std::collections::BTreeSet;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let vcs: Vec<u8> = args
        .first()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("VC counts are small integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 1]);
    assert_eq!(vcs.len(), 2, "the explorer ranks 2D designs");
    println!("exploring 2D designs with {vcs:?} VCs per dimension\n");

    // Collect candidates from every arrangement + derivation + reordering.
    let mut seen = BTreeSet::new();
    let mut designs: Vec<PartitionSeq> = Vec::new();
    let push = |seq: PartitionSeq, seen: &mut BTreeSet<String>, out: &mut Vec<PartitionSeq>| {
        if seen.insert(seq.canonical_string()) {
            out.push(seq);
        }
    };
    let mut arrangements = vec![arrangement1(&vcs).expect("valid budget")];
    arrangements.extend(arrangement2(&vcs).expect("valid budget"));
    arrangements.extend(arrangement3(&vcs).expect("valid budget"));
    for arr in arrangements {
        for seq in derive_all(arr).expect("algorithm 2") {
            for alt in transition_reorderings(&seq) {
                push(alt, &mut seen, &mut designs);
            }
        }
    }
    if vcs == [1, 1] {
        for seq in ebda_core::exceptional::exceptional_partitionings(2).expect("2^n options") {
            push(seq, &mut seen, &mut designs);
        }
    }

    // Evaluate each candidate.
    let topo = Topology::mesh(&[5, 5]);
    let mut rows = Vec::new();
    for seq in &designs {
        let ex = extract_turns(seq).expect("valid design");
        let report = verify_design(&topo, seq).expect("valid design");
        assert!(report.is_deadlock_free(), "{seq}: {report}");
        let channels = seq.channels();
        let profile = adaptiveness_profile(ex.turn_set(), &channels, 4, 2);
        let classes = region_classes(ex.turn_set(), &channels, 4, 2);
        let fully = classes
            .iter()
            .filter(|(_, c)| *c == RegionClass::FullyAdaptive)
            .count();
        rows.push((
            seq.to_string(),
            seq.len(),
            ex.turn_set().counts().ninety,
            fully,
            profile.sum as f64 / profile.pairs as f64,
        ));
    }
    rows.sort_by(|a, b| b.4.partial_cmp(&a.4).expect("finite averages"));

    println!(
        "{:<52} {:>5} {:>6} {:>10} {:>10}",
        "design", "parts", "90deg", "full-adpt", "avg paths"
    );
    println!("{:-<88}", "");
    for (design, parts, ninety, fully, avg) in &rows {
        println!("{design:<52} {parts:>5} {ninety:>6} {fully:>8}/4 {avg:>10.2}");
    }
    println!(
        "\n{} distinct designs, all verified deadlock-free on a 5x5 mesh;\n\
         fewer partitions => more 90-degree turns => higher adaptiveness\n\
         (Section 5.3's knob, ranked)",
        rows.len()
    );
    if let Some(path) = &obs.trace {
        write_telemetry(path);
    }
    obs.finish();
}
