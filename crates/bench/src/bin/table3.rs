//! Regenerates Table 3: partitioning options with four singleton
//! partitions — deterministic routing algorithms, XY/YX among them.

use ebda_bench::table_entry;
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm2::enumerate_partitionings;
use ebda_core::{extract_turns, parse_channels};

fn main() {
    let channels = parse_channels("X+ X- Y+ Y-").expect("static channels");
    let all = enumerate_partitionings(&channels, 4);
    let topo = Topology::mesh(&[6, 6]);
    for seq in &all {
        let report = verify_design(&topo, seq).expect("valid");
        assert!(report.is_deadlock_free(), "{seq}: {report}");
    }
    assert_eq!(all.len(), 24, "4! orderings of four singletons");

    println!("Table 3: partitioning options leading to deterministic routing");
    println!("{:-<72}", "");
    let paper_rows = [
        "X1+ -> Y1+ -> X1- -> Y1-",
        "X1+ -> Y1- -> X1- -> Y1+",
        "X1- -> Y1+ -> X1+ -> Y1-",
        "X1- -> Y1- -> X1+ -> Y1+",
        "X1+ -> X1- -> Y1+ -> Y1-",
        "Y1+ -> Y1- -> X1+ -> X1-",
    ];
    for row in paper_rows.chunks(2) {
        println!("{:<34} | {:<34}", row[0], row.get(1).copied().unwrap_or(""));
    }
    println!("{:-<72}", "");
    for expected in paper_rows {
        assert!(
            all.iter().any(|s| table_entry(s) == expected),
            "paper row {expected} not generated"
        );
    }
    // The X+ -> X- -> Y+ -> Y- ordering is XY routing: exactly the four
    // 90-degree turns EN, ES, WN, WS, and one minimal path everywhere.
    let xy = all
        .iter()
        .find(|s| table_entry(s) == "X1+ -> X1- -> Y1+ -> Y1-")
        .expect("xy ordering present");
    let ex = extract_turns(xy).expect("extractable");
    assert_eq!(ex.turn_set().counts().ninety, 4);
    println!(
        "all 24 orderings verified deadlock-free; the X+ -> X- -> Y+ -> Y- \
         entry reproduces XY routing ({} 90-degree turns)",
        ex.turn_set().counts().ninety
    );
}
