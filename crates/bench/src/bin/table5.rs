//! Regenerates Table 5: the thirty allowable 90-degree turns of the
//! improved partially connected 3D design
//! `P = {PA[X1+ Y1* Z1+]; PB[X1- Y2* Z1-]}` (Section 6.3).

use ebda_bench::compass_turn;
use ebda_cdg::{verify_design, Topology};
use ebda_core::extract::Justification;
use ebda_core::{catalog, extract_turns, Dimension, TurnKind, TurnSet};

fn ninety(ts: &TurnSet) -> Vec<String> {
    ts.of_kind(TurnKind::Ninety).map(compass_turn).collect()
}

fn main() {
    let seq = catalog::table5_partial3d();
    println!("design: {seq}  (1, 2, 1 VCs along X, Y, Z)");
    let ex = extract_turns(&seq).expect("valid design");

    println!("\nTable 5: allowable 90-degree turns");
    println!("{:-<74}", "");
    for (label, just) in [
        ("in PA", Justification::Theorem1 { partition: 0 }),
        ("in PB", Justification::Theorem1 { partition: 1 }),
        (
            "by transition PA->PB",
            Justification::Theorem3 { from: 0, to: 1 },
        ),
    ] {
        let turns = ninety(&ex.turns_for(just));
        println!("{:<22} | {}", label, turns[..5].join(", "));
        println!("{:<22} | {}", "", turns[5..].join(", "));
        assert_eq!(turns.len(), 10, "each Table 5 row lists ten turns");
    }
    println!("{:-<74}", "");
    let c = ex.turn_set().counts();
    println!(
        "{} 90-degree turns total (paper: 30); {} U-turns + {} I-turns \
         (paper counts 6; full Theorem-3 extraction adds the two cross-VC \
         Y U-turns — see EXPERIMENTS.md)",
        c.ninety, c.u_turns, c.i_turns
    );
    assert_eq!(c.ninety, 30);

    // Verify on a partially connected 4x4x3 mesh with four elevators.
    let topo = Topology::mesh(&[4, 4, 3]).with_partial_dim(
        Dimension::Z,
        [vec![0, 0], vec![3, 0], vec![0, 3], vec![2, 2]],
    );
    let report = verify_design(&topo, &seq).expect("valid");
    assert!(report.is_deadlock_free(), "{report}");
    println!("verified deadlock-free on the partially connected 4x4x3 mesh: {report}");

    // Compare VC budgets with the Elevator-First baseline.
    println!(
        "\nbaseline Elevator-First needs 2+2+1 VCs and 16 deterministic turns;\n\
         the EbDa design needs 1+2+1 VCs and offers fully adaptive routing in\n\
         the NEU, SEU, NWD, SWD regions (partially adaptive elsewhere)."
    );
}
