//! Regenerates Table 1: the 12 partitioning options leading to maximum
//! adaptiveness in a 2D network with four channels.
//!
//! Columns 1–2 come from Algorithm 1 + Algorithm 2 under Arrangements 1–2
//! (rows 3–4 by reordering the transitions, Section 5.3.3); column 3 is the
//! exceptional no-VC case of Section 5.2.2. Every option is verified
//! deadlock-free with Dally's criterion on a 6x6 mesh.

use ebda_bench::table_entry;
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm2::{derive_all, transition_reorderings};
use ebda_core::exceptional::exceptional_partitionings;
use ebda_core::sets::arrangement2;
use ebda_core::PartitionSeq;

fn main() {
    let topo = Topology::mesh(&[6, 6]);
    let mut columns: Vec<Vec<PartitionSeq>> = Vec::new();

    // Columns 1 and 2: one per arrangement (X-led and Y-led).
    for arr in arrangement2(&[1, 1]).expect("2D arrangement") {
        let mut column = Vec::new();
        for seq in derive_all(arr).expect("algorithm 2") {
            column.push(seq);
        }
        // Rows 3-4: the reversed transition orders of rows 1-2.
        for seq in column.clone() {
            for alt in transition_reorderings(&seq) {
                if alt != seq && !column.contains(&alt) {
                    column.push(alt);
                }
            }
        }
        columns.push(column);
    }
    // Column 3: the exceptional case.
    columns.push(exceptional_partitionings(2).expect("2^n options"));

    println!("Table 1: partitioning options leading to maximum adaptiveness");
    println!("{:-<100}", "");
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut total = 0;
    for r in 0..rows {
        let mut cells = Vec::new();
        for col in &columns {
            cells.push(match col.get(r) {
                Some(seq) => table_entry(seq),
                None => String::new(),
            });
        }
        println!("{:<32} | {:<32} | {:<32}", cells[0], cells[1], cells[2]);
    }
    println!("{:-<100}", "");

    // Verification sweep.
    let mut seen = std::collections::BTreeSet::new();
    for col in &columns {
        for seq in col {
            let report = verify_design(&topo, seq).expect("valid design");
            assert!(report.is_deadlock_free(), "{seq}: {report}");
            seen.insert(seq.to_string());
            total += 1;
        }
    }
    println!(
        "{total} options generated, {} distinct, all verified deadlock-free on a 6x6 mesh",
        seen.len()
    );
    assert_eq!(seen.len(), 12, "the paper reports 12 options");
}
