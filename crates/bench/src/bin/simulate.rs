//! Extension experiments E1/E2 (the paper itself reports no simulations):
//!
//! * **E1 — empirical deadlock freedom**: every EbDa-derived design runs at
//!   and beyond saturation with the watchdog armed, under unrestricted
//!   multi-packet wormhole buffers; a deliberately cyclic turn set is the
//!   positive control.
//! * **E2 — packet distribution**: channel-load balance (coefficient of
//!   variation) and latency of EbDa's escape-free fully adaptive design vs
//!   the Duato adaptive+escape baseline, in both buffer-policy modes.
//!
//! Tracing: `--trace-out <path>` (or `EBDA_TRACE`) attaches a flight
//! recorder to a representative run and writes the trace on exit;
//! `--journey-out <path>` (or `EBDA_JOURNEY_OUT`) additionally exports
//! that run's per-packet journeys as a Chrome-trace timeline, thinned
//! with `--journey-sample-rate <p>`; `--quick` skips the full E1/E2
//! experiments and runs only that traced run with a short horizon (for
//! smoke tests and trace round-trips).

use ebda_bench::trace::{write_journey, write_trace, ObsOptions};
use ebda_routing::classic::{DimensionOrder, DuatoFullyAdaptive};
use ebda_routing::{RoutingRelation, Topology, TurnRouting};
use noc_sim::{simulate, simulate_traced, BufferPolicy, SimConfig, TrafficPattern};

fn cfg(rate: f64, traffic: TrafficPattern) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        traffic,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let quick = args.iter().any(|a| a == "--quick");
    if !quick {
        run_experiments();
    }
    if let Some(mut rec) = obs.recorder() {
        let topo = Topology::mesh(&[8, 8]);
        let dyxy = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();
        let mut c = cfg(0.05, TrafficPattern::Uniform);
        if quick {
            c.warmup = 50;
            c.measurement = 200;
            c.drain = 300;
            c.deadlock_threshold = 200;
        }
        let r = simulate_traced(&topo, &dyxy, &c, Some(&mut rec));
        println!(
            "\ntraced run (ebda-dyxy, uniform, rate {}): {r}\n\
             {} events recorded ({} retained, {} evicted), {} samples",
            c.injection_rate,
            rec.total_events(),
            rec.retained(),
            rec.evicted(),
            rec.samples().len()
        );
        if let Some(path) = &obs.trace {
            write_trace(&rec, path);
        }
        if let Some(path) = &obs.journey {
            write_journey(&rec, "ebda-dyxy uniform", path);
        }
    }
    obs.finish();
}

fn run_experiments() {
    let topo = Topology::mesh(&[8, 8]);
    let designs: Vec<(&str, Box<dyn RoutingRelation>)> = vec![
        ("xy", Box::new(DimensionOrder::xy())),
        (
            "west-first",
            Box::new(TurnRouting::from_design("wf", &ebda_core::catalog::p3_west_first()).unwrap()),
        ),
        (
            "negative-first",
            Box::new(
                TurnRouting::from_design("nf", &ebda_core::catalog::p4_negative_first()).unwrap(),
            ),
        ),
        (
            "odd-even",
            Box::new(TurnRouting::from_design("oe", &ebda_core::catalog::odd_even()).unwrap()),
        ),
        (
            "ebda-dyxy (6ch)",
            Box::new(TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap()),
        ),
        (
            "ebda-fig7c (6ch)",
            Box::new(TurnRouting::from_design("7c", &ebda_core::catalog::fig7c()).unwrap()),
        ),
    ];

    println!("E1: deadlock-freedom sweep, 8x8 mesh, multi-packet wormhole buffers");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}",
        "design", "rate 0.02", "rate 0.10", "rate 0.30", "verdict"
    );
    for (name, relation) in &designs {
        let mut ok = true;
        let mut cells = Vec::new();
        for rate in [0.02, 0.10, 0.30] {
            let r = simulate(
                &topo,
                relation.as_ref(),
                &cfg(rate, TrafficPattern::Uniform),
            );
            ok &= r.outcome.is_deadlock_free() && r.routing_faults == 0;
            cells.push(format!("{:.3}", r.throughput));
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>12}",
            name,
            cells[0],
            cells[1],
            cells[2],
            if ok { "no deadlock" } else { "DEADLOCK" }
        );
        assert!(ok, "{name} must stay deadlock-free");
    }
    println!("(cells are accepted throughput in flits/node/cycle)");

    // E1b: the paper's Section-2 criticism of Duato's theory, observed.
    // Duato's guarantee needs single-packet input buffers (its Assumption
    // 3); with EbDa-style unrestricted multi-packet buffers a blocked
    // header is no longer at the queue head and cannot reach the escape
    // channels.
    println!("\nE1b: Duato adaptive+escape under both buffer policies, rate 0.30");
    let duato = DuatoFullyAdaptive::new(2);
    for (pname, policy) in [
        ("single-packet (Assumption 3)", BufferPolicy::SinglePacket),
        ("multi-packet (EbDa's regime)", BufferPolicy::MultiPacket),
    ] {
        let mut c = cfg(0.30, TrafficPattern::Uniform);
        c.buffer_policy = policy;
        // A traffic stream under which the multi-packet run exhibits the
        // deadlock (single-packet survives the same stream).
        c.seed = 1;
        let r = simulate(&topo, &duato, &c);
        println!(
            "  {:<30} {}",
            pname,
            if r.outcome.is_deadlock_free() {
                format!("no deadlock (throughput {:.3})", r.throughput)
            } else {
                format!("{}", r)
            }
        );
        if policy == BufferPolicy::SinglePacket {
            assert!(
                r.outcome.is_deadlock_free(),
                "duato must be safe under its own assumption: {r}"
            );
        }
    }
    println!(
        "  paper match: \"[Duato's] theory strongly limits the wormhole\n\
         switching technique as multiple packets cannot be resided in an\n\
         input buffer\" — the multi-packet run above shows why."
    );

    println!("\nE2: channel balance + latency at rate 0.05, transpose traffic");
    println!(
        "{:<18} {:>10} {:>12} {:>16} {:>14}",
        "design", "policy", "avg latency", "delivered/meas", "balance CV"
    );
    let dyxy = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();
    let duato = DuatoFullyAdaptive::new(2);
    for (name, relation) in [
        ("ebda-dyxy", &dyxy as &dyn RoutingRelation),
        ("duato", &duato as &dyn RoutingRelation),
    ] {
        for (pname, policy) in [
            ("multi", BufferPolicy::MultiPacket),
            ("single", BufferPolicy::SinglePacket),
        ] {
            let mut c = cfg(0.05, TrafficPattern::Transpose);
            c.buffer_policy = policy;
            let r = simulate(&topo, relation, &c);
            println!(
                "{:<18} {:>10} {:>12.1} {:>9}/{:<6} {:>14.3}",
                name,
                pname,
                r.avg_latency,
                r.measured_delivered,
                r.measured_injected,
                r.channel_balance_cv().unwrap_or(f64::NAN)
            );
            assert!(r.outcome.is_deadlock_free());
        }
    }
    println!(
        "\nnote: EbDa lets every channel carry traffic (no idle escape\n\
         reserve) and keeps working with multi-packet buffers, where a\n\
         faithful Duato configuration must restrict buffers to one packet."
    );
}
