//! Reproducible performance measurements for the bench trajectory
//! (`BENCH_*.json` at the repository root).
//!
//! Usage: `cargo run --release -p ebda-bench --bin bench_report -- \
//!            [--label NAME] [--out FILE]`
//!
//! Runs a fixed set of workloads — the simulator hot path, the brute-force
//! deadlock searcher, the shrinker, a full sweep (16 points x 3
//! replicates) and an oracle campaign — and writes one JSON document with
//! nanosecond timings per workload. Two invocations of this binary (one
//! per tree) are merged into a `BENCH_<pr>.json` before/after record; see
//! `docs/PERFORMANCE.md` for the schema.
//!
//! Microbenchmarks go through the auto-scaling harness in
//! [`ebda_bench::harness`]; the two macro workloads (sweep, oracle) are
//! timed once, wall-clock, because they run seconds not microseconds.
//! `EBDA_THREADS` applies to the macro workloads like to any binary.

use ebda_bench::harness::bench;
use ebda_cdg::dally::{design_universe, infer_vcs};
use ebda_cdg::topology::Topology as CdgTopology;
use ebda_oracle::artifact::{Artifact, ArtifactKind};
use ebda_oracle::brute;
use ebda_oracle::differential::{run_campaign, CampaignConfig};
use ebda_oracle::shrink::{shrink, DEFAULT_SHRINK_BUDGET};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::Topology;
use noc_sim::sweep::{latency_curve, replicate};
use noc_sim::{simulate, SimConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One recorded workload timing.
struct Entry {
    name: &'static str,
    /// Mean nanoseconds per iteration (microbench) or total wall-clock
    /// nanoseconds (macro workload).
    ns: f64,
    /// How the number was obtained: `"harness"` or `"wallclock"`.
    mode: &'static str,
}

fn sweep_base() -> SimConfig {
    SimConfig {
        warmup: 100,
        measurement: 400,
        drain: 600,
        deadlock_threshold: 400,
        collect_latencies: false,
        ..SimConfig::default()
    }
}

/// The 16-point sweep the acceptance criteria name: 16 rates, each
/// replicated 3 times, on an 8x8 mesh under XY routing.
fn sweep_workload() -> f64 {
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let base = sweep_base();
    let rates: Vec<f64> = (1..=16).map(|i| 0.005 * i as f64).collect();
    let t0 = Instant::now();
    let curve = latency_curve(&topo, &xy, &base, &rates);
    assert_eq!(curve.len(), 16);
    for &rate in &rates[..3] {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base.clone()
        };
        let rep = replicate(&topo, &xy, &cfg, 3);
        assert_eq!(rep.replicates, 3);
    }
    t0.elapsed().as_nanos() as f64
}

fn oracle_workload() -> f64 {
    let cfg = CampaignConfig {
        seed: 7,
        budget: Duration::ZERO,
        min_configs: 150,
        max_configs: 150,
        max_nodes: 25,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let report = run_campaign(&cfg);
    assert!(report.is_clean(), "{report}");
    t0.elapsed().as_nanos() as f64
}

fn torus_rings() -> Artifact {
    Artifact {
        id: 0,
        kind: ArtifactKind::ChannelOrdering,
        radix: vec![4, 4],
        wrap: vec![true, true],
        vcs: vec![1, 1],
        universe: ebda_core::parse_channels("X+ X- Y+ Y-").unwrap(),
        turns: ebda_core::TurnSet::new(),
        design: None,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        assert!(i + 1 < args.len(), "{flag} needs a value");
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let label = take(&mut args, "--label").unwrap_or_else(|| "run".into());
    let out = take(&mut args, "--out");
    assert!(args.is_empty(), "unknown arguments: {args:?}");

    let mut entries: Vec<Entry> = Vec::new();

    // Engine hot path: one mid-load simulation on an 8x8 mesh.
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let cfg = SimConfig {
        injection_rate: 0.05,
        ..sweep_base()
    };
    let m = bench("engine/sim-8x8-rate05", || simulate(&topo, &xy, &cfg));
    entries.push(Entry {
        name: "engine/sim-8x8-rate05",
        ns: m.mean_ns,
        mode: "harness",
    });

    // Brute-force searcher: the torus-dateline design on a 6x6 torus (the
    // largest structured search the tests exercise) and the all-turns
    // mesh (deadlocking, so the fixed point stays populated).
    let radix = vec![6usize, 6];
    let torus = CdgTopology::torus(&radix);
    let seq = ebda_core::catalog::torus_dateline(&radix);
    let universe = design_universe(&seq);
    let vcs = infer_vcs(&universe, 2);
    let turns = ebda_core::extract_turns(&seq).unwrap().into_turn_set();
    let m = bench("brute/torus-dateline-6x6", || {
        let r = brute::search(&torus, &vcs, &universe, &turns);
        assert!(r.is_deadlock_free());
        r.sweeps
    });
    entries.push(Entry {
        name: "brute/torus-dateline-6x6",
        ns: m.mean_ns,
        mode: "harness",
    });

    let mesh = CdgTopology::mesh(&[5, 5]);
    let u2 = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
    let mut all_turns = ebda_core::TurnSet::new();
    for &a in &u2 {
        for &b in &u2 {
            if a != b {
                all_turns.insert(ebda_core::Turn::new(a, b));
            }
        }
    }
    let m = bench("brute/all-turns-mesh-5x5", || {
        let r = brute::search(&mesh, &[1, 1], &u2, &all_turns);
        assert!(!r.is_deadlock_free());
        r.surviving
    });
    entries.push(Entry {
        name: "brute/all-turns-mesh-5x5",
        ns: m.mean_ns,
        mode: "harness",
    });

    // Shrinker: minimize the classic torus-rings counterexample.
    let start = torus_rings();
    let deadlocks = |a: &Artifact| {
        !brute::search(&a.topology(), &a.vcs, &a.universe, &a.turns).is_deadlock_free()
    };
    let m = bench("shrink/torus-rings", || {
        let small = shrink(&start, deadlocks, DEFAULT_SHRINK_BUDGET);
        assert_eq!(small.universe.len(), 1);
    });
    entries.push(Entry {
        name: "shrink/torus-rings",
        ns: m.mean_ns,
        mode: "harness",
    });

    // Macro workloads, timed once.
    let ns = sweep_workload();
    println!(
        "{:<44} {:>12} wall-clock",
        "sweep/16pt-x3rep-8x8",
        ebda_bench::harness::Measurement::human(ns)
    );
    entries.push(Entry {
        name: "sweep/16pt-x3rep-8x8",
        ns,
        mode: "wallclock",
    });
    let ns = oracle_workload();
    println!(
        "{:<44} {:>12} wall-clock",
        "oracle/campaign-150",
        ebda_bench::harness::Measurement::human(ns)
    );
    entries.push(Entry {
        name: "oracle/campaign-150",
        ns,
        mode: "wallclock",
    });

    // Render the JSON document.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"threads_env\": \"{}\",",
        std::env::var("EBDA_THREADS").unwrap_or_default()
    );
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns\": {:.0}, \"mode\": \"{}\"}}{}",
            e.name,
            e.ns,
            e.mode,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench report written to {path}");
        }
        None => print!("{json}"),
    }
}
