//! Reproducible performance measurements for the bench trajectory
//! (`BENCH_*.json` at the repository root), plus the continuous
//! perf-regression gate CI runs on every push.
//!
//! Usage: `cargo run --release -p ebda-bench --bin bench_report -- \
//!            [--label NAME] [--out FILE] \
//!            [--baseline BENCH_N.json [--gate RATIO]] [--inject-regression]`
//!
//! Runs a fixed set of workloads — the simulator hot path, the brute-force
//! deadlock searcher, the shrinker, a full sweep (16 points x 3
//! replicates) and an oracle campaign — and writes one JSON document with,
//! per workload, the wall-clock nanoseconds **and** the deterministic
//! work-unit counters behind them (cycles simulated, GFP sweeps, shrink
//! evaluations, CDG edges visited, ...), captured by one dedicated run
//! under the [`ebda_obs::prof`] self-profiler. See `docs/PERFORMANCE.md`
//! for the schema and the gate semantics.
//!
//! `--baseline` compares the current tree against a previous report (a
//! bare report or a `BENCH_N.json` before/after document — the `after`
//! side is used). The gate trips — exit code 1 — when any shared
//! work-unit counter grew beyond `baseline * RATIO` (default 1.25).
//! **Only the deterministic counters gate**; wall-clock deltas are
//! reported informationally, because CI boxes are noisy but algorithmic
//! work is not. `--inject-regression` doubles every current counter so
//! CI can prove the gate actually trips.
//!
//! Microbenchmarks go through the auto-scaling harness in
//! [`ebda_bench::harness`]; the two macro workloads (sweep, oracle) are
//! timed once, wall-clock, because they run seconds not microseconds.
//! The work-unit capture never goes through the harness — counters come
//! from exactly one profiled execution per workload, so they are
//! byte-identical at every `EBDA_THREADS` value and on every host.

use ebda_bench::harness::bench;
use ebda_cdg::dally::{design_universe, infer_vcs};
use ebda_cdg::topology::Topology as CdgTopology;
use ebda_obs::json::Value;
use ebda_obs::ledger::git_rev;
use ebda_oracle::artifact::{Artifact, ArtifactKind};
use ebda_oracle::brute;
use ebda_oracle::differential::{run_campaign, CampaignConfig};
use ebda_oracle::incr;
use ebda_oracle::shrink::{shrink, DEFAULT_SHRINK_BUDGET};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::Topology;
use noc_sim::sweep::{latency_curve, replicate};
use noc_sim::{simulate, SimConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One recorded workload: its timing plus the deterministic work-unit
/// counters (`"phase:unit"` -> count) from the dedicated profiled run.
struct Entry {
    name: &'static str,
    /// Mean nanoseconds per iteration (microbench) or total wall-clock
    /// nanoseconds (macro workload).
    ns: f64,
    /// How the number was obtained: `"harness"` or `"wallclock"`.
    mode: &'static str,
    /// Deterministic work-unit counters, flattened as `phase:unit`.
    work: BTreeMap<String, u64>,
}

fn sweep_base() -> SimConfig {
    SimConfig {
        warmup: 100,
        measurement: 400,
        drain: 600,
        deadlock_threshold: 400,
        collect_latencies: false,
        ..SimConfig::default()
    }
}

/// The 16-point sweep the acceptance criteria name: 16 rates, each
/// replicated 3 times, on an 8x8 mesh under XY routing.
fn sweep_workload() -> f64 {
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let base = sweep_base();
    let rates: Vec<f64> = (1..=16).map(|i| 0.005 * i as f64).collect();
    let t0 = Instant::now();
    let curve = latency_curve(&topo, &xy, &base, &rates);
    assert_eq!(curve.len(), 16);
    for &rate in &rates[..3] {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base.clone()
        };
        let rep = replicate(&topo, &xy, &cfg, 3);
        assert_eq!(rep.replicates, 3);
    }
    t0.elapsed().as_nanos() as f64
}

fn oracle_workload() -> f64 {
    let cfg = CampaignConfig {
        seed: 7,
        budget: Duration::ZERO,
        min_configs: 150,
        max_configs: 150,
        max_nodes: 25,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let report = run_campaign(&cfg);
    assert!(report.is_clean(), "{report}");
    t0.elapsed().as_nanos() as f64
}

fn torus_rings() -> Artifact {
    Artifact {
        id: 0,
        kind: ArtifactKind::ChannelOrdering,
        radix: vec![4, 4],
        wrap: vec![true, true],
        vcs: vec![1, 1],
        universe: ebda_core::parse_channels("X+ X- Y+ Y-").unwrap(),
        turns: ebda_core::TurnSet::new(),
        design: None,
    }
}

/// Runs `f` exactly once under a freshly-reset profiler and returns the
/// work-unit counters it recorded, flattened as `phase:unit`. The
/// flattened tree is deterministic: the same tree at every thread count
/// and on every host, which is what makes it gateable.
fn counted_run(f: impl FnOnce()) -> BTreeMap<String, u64> {
    ebda_obs::prof::reset();
    f();
    let snap = ebda_obs::prof::snapshot();
    let mut work = BTreeMap::new();
    for (path, stat) in &snap.phases {
        for (unit, &v) in &stat.work {
            work.insert(format!("{path}:{unit}"), v);
        }
    }
    work
}

/// Baseline measurements: workload name -> (wall ns, work counters).
type BaselineMap = BTreeMap<String, (f64, BTreeMap<String, u64>)>;

/// The baseline measurements. Accepts both a bare report and a
/// `BENCH_N.json` before/after document (the `after` side is the
/// baseline — it describes the tree that was committed).
fn parse_baseline(path: &str) -> Result<BaselineMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let report = doc.get("after").unwrap_or(&doc);
    let measurements = report
        .get("measurements")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no measurements array"))?;
    let mut out = BTreeMap::new();
    for m in measurements {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: measurement without a name"))?;
        let ns = m.get("ns").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let mut work = BTreeMap::new();
        if let Some(Value::Obj(map)) = m.get("work") {
            for (k, v) in map {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("{path}: {name} work {k} is not a count"))?;
                work.insert(k.clone(), v);
            }
        }
        out.insert(name.to_string(), (ns, work));
    }
    Ok(out)
}

/// Applies the gate: every work counter shared with the baseline must
/// stay within `baseline * gate`. Returns the violations; prints the
/// full comparison (counters gating, wall-clock informational).
fn apply_gate(entries: &[Entry], baseline: &BaselineMap, gate: f64) -> Vec<String> {
    let mut violations = Vec::new();
    println!("\nregression gate (work-unit counters, limit {gate}x):");
    for e in entries {
        let Some((base_ns, base_work)) = baseline.get(e.name) else {
            println!("  {:<28} not in baseline (skipped)", e.name);
            continue;
        };
        // Wall clock is informational only: shared CI boxes are noisy.
        let wall = if base_ns.is_finite() && *base_ns > 0.0 {
            format!(
                "wall {:+.1}% (informational)",
                100.0 * (e.ns / base_ns - 1.0)
            )
        } else {
            "wall n/a".to_string()
        };
        println!("  {:<28} {wall}", e.name);
        for (key, &cur) in &e.work {
            let Some(&base) = base_work.get(key) else {
                println!("    {key:<40} {cur:>14} (new counter, not gated)");
                continue;
            };
            let limit = (base as f64 * gate).ceil() as u64;
            let verdict = if cur > limit { "REGRESSION" } else { "ok" };
            println!("    {key:<40} {cur:>14} vs {base:>14} (limit {limit}) {verdict}");
            if cur > limit {
                violations.push(format!(
                    "{}: {key} grew {base} -> {cur} (limit {limit} at {gate}x)",
                    e.name
                ));
            }
        }
        for key in base_work.keys() {
            if !e.work.contains_key(key) {
                let msg = format!(
                    "{}: counter {key} disappeared from the current tree",
                    e.name
                );
                println!("    {msg}");
                violations.push(msg);
            }
        }
    }
    violations
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        assert!(i + 1 < args.len(), "{flag} needs a value");
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let take_flag = |args: &mut Vec<String>, flag: &str| -> bool {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.remove(i))
            .is_some()
    };
    let label = take(&mut args, "--label").unwrap_or_else(|| "run".into());
    let out = take(&mut args, "--out");
    let baseline_path = take(&mut args, "--baseline");
    let gate: f64 = take(&mut args, "--gate")
        .map(|v| v.parse().expect("--gate needs a ratio like 1.25"))
        .unwrap_or(1.25);
    let inject = take_flag(&mut args, "--inject-regression");
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        return ExitCode::from(2);
    }
    assert!(gate >= 1.0, "--gate below 1.0 rejects identical trees");

    // Shared workload fixtures.
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let cfg = SimConfig {
        injection_rate: 0.05,
        ..sweep_base()
    };
    let radix = vec![6usize, 6];
    let torus = CdgTopology::torus(&radix);
    let seq = ebda_core::catalog::torus_dateline(&radix);
    let universe = design_universe(&seq);
    let vcs = infer_vcs(&universe, 2);
    let turns = ebda_core::extract_turns(&seq).unwrap().into_turn_set();
    let mesh = CdgTopology::mesh(&[5, 5]);
    let u2 = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
    let mut all_turns = ebda_core::TurnSet::new();
    for &a in &u2 {
        for &b in &u2 {
            if a != b {
                all_turns.insert(ebda_core::Turn::new(a, b));
            }
        }
    }
    let start = torus_rings();
    let deadlocks = |a: &Artifact| {
        !brute::search(&a.topology(), &a.vcs, &a.universe, &a.turns).is_deadlock_free()
    };
    // The CDG-bound shrink workload: a near-1-minimal turn-cycle on a
    // 3D mesh, shrunk while its Dally CDG stays cyclic. The 2x2x2
    // radix is already at the structural floor (no unwrap/shave/VC
    // candidates) and the six turns form one class-level ring, so every
    // candidate is a channel or turn drop that *breaks* the cycle: the
    // shrinker scans them all and keeps none. Full-rebuild mode pays a
    // CDG build plus a whole-graph cycle search per candidate;
    // incremental mode answers each from the parent's CSR, rechecking
    // only the one dirty SCC.
    let u3 = ebda_core::parse_channels("X+ X- Y+ Y- Z+ Z-").unwrap();
    let ring = ["X+", "Y+", "Z+", "X-", "Y-", "Z-"];
    let mut ring_turns = ebda_core::TurnSet::new();
    for w in ring.windows(2).chain(std::iter::once(&["Z-", "X+"][..])) {
        ring_turns.insert(ebda_core::Turn::new(
            w[0].parse().unwrap(),
            w[1].parse().unwrap(),
        ));
    }
    let cdg_start = Artifact {
        id: 0,
        kind: ArtifactKind::RandomTurns,
        radix: vec![2, 2, 2],
        wrap: vec![false, false, false],
        vcs: vec![1, 1, 1],
        universe: u3,
        turns: ring_turns,
        design: None,
    };

    // Work-unit capture: one profiled execution per workload, before any
    // timing, then the profiler goes back off so the timed passes run the
    // same disabled fast path the baseline did. The brute searcher is a
    // leaf (its report carries its own deterministic work), so its
    // counters come straight from the returned report.
    ebda_obs::prof::set_enabled(true);
    let work_engine = counted_run(|| {
        simulate(&topo, &xy, &cfg);
    });
    let brute_report = brute::search(&torus, &vcs, &universe, &turns);
    assert!(brute_report.is_deadlock_free());
    let work_brute_torus = BTreeMap::from([
        ("brute:gfp_sweeps".to_string(), brute_report.sweeps as u64),
        ("brute:wait_pairs".to_string(), brute_report.pairs as u64),
    ]);
    let brute_report = brute::search(&mesh, &[1, 1], &u2, &all_turns);
    assert!(!brute_report.is_deadlock_free());
    let work_brute_mesh = BTreeMap::from([
        ("brute:gfp_sweeps".to_string(), brute_report.sweeps as u64),
        ("brute:wait_pairs".to_string(), brute_report.pairs as u64),
        ("brute:surviving".to_string(), brute_report.surviving as u64),
    ]);
    let work_shrink = counted_run(|| {
        let small = shrink(&start, deadlocks, DEFAULT_SHRINK_BUDGET);
        assert_eq!(small.universe.len(), 1);
    });
    // Captured at threads=1: parallel shrink waves evaluate speculative
    // candidates past the accepted one, which would make the incremental
    // counters depend on the worker count; serial evaluation is the
    // deterministic reference (verdicts are identical at every count).
    let work_cdg_shrink = counted_run(|| {
        let small = incr::shrink_while_cyclic(&cdg_start, DEFAULT_SHRINK_BUDGET, 1);
        assert_eq!(small, cdg_start, "the turn ring is already 1-minimal");
    });
    let work_sweep = counted_run(|| {
        sweep_workload();
    });
    let work_oracle = counted_run(|| {
        oracle_workload();
    });
    ebda_obs::prof::set_enabled(false);
    ebda_obs::prof::reset();

    let mut entries: Vec<Entry> = Vec::new();

    // Engine hot path: one mid-load simulation on an 8x8 mesh.
    let m = bench("engine/sim-8x8-rate05", || simulate(&topo, &xy, &cfg));
    entries.push(Entry {
        name: "engine/sim-8x8-rate05",
        ns: m.mean_ns,
        mode: "harness",
        work: work_engine,
    });

    // Brute-force searcher: the torus-dateline design on a 6x6 torus (the
    // largest structured search the tests exercise) and the all-turns
    // mesh (deadlocking, so the fixed point stays populated).
    let m = bench("brute/torus-dateline-6x6", || {
        let r = brute::search(&torus, &vcs, &universe, &turns);
        assert!(r.is_deadlock_free());
        r.sweeps
    });
    entries.push(Entry {
        name: "brute/torus-dateline-6x6",
        ns: m.mean_ns,
        mode: "harness",
        work: work_brute_torus,
    });

    let m = bench("brute/all-turns-mesh-5x5", || {
        let r = brute::search(&mesh, &[1, 1], &u2, &all_turns);
        assert!(!r.is_deadlock_free());
        r.surviving
    });
    entries.push(Entry {
        name: "brute/all-turns-mesh-5x5",
        ns: m.mean_ns,
        mode: "harness",
        work: work_brute_mesh,
    });

    // Shrinker: minimize the classic torus-rings counterexample.
    let m = bench("shrink/torus-rings", || {
        let small = shrink(&start, deadlocks, DEFAULT_SHRINK_BUDGET);
        assert_eq!(small.universe.len(), 1);
    });
    entries.push(Entry {
        name: "shrink/torus-rings",
        ns: m.mean_ns,
        mode: "harness",
        work: work_shrink,
    });

    let m = bench("shrink/turn-ring-cdg", || {
        incr::shrink_while_cyclic(&cdg_start, DEFAULT_SHRINK_BUDGET, 1)
    });
    entries.push(Entry {
        name: "shrink/turn-ring-cdg",
        ns: m.mean_ns,
        mode: "harness",
        work: work_cdg_shrink,
    });

    // Macro workloads, timed once.
    let ns = sweep_workload();
    println!(
        "{:<44} {:>12} wall-clock",
        "sweep/16pt-x3rep-8x8",
        ebda_bench::harness::Measurement::human(ns)
    );
    entries.push(Entry {
        name: "sweep/16pt-x3rep-8x8",
        ns,
        mode: "wallclock",
        work: work_sweep,
    });
    let ns = oracle_workload();
    println!(
        "{:<44} {:>12} wall-clock",
        "oracle/campaign-150",
        ebda_bench::harness::Measurement::human(ns)
    );
    entries.push(Entry {
        name: "oracle/campaign-150",
        ns,
        mode: "wallclock",
        work: work_oracle,
    });

    if inject {
        // CI's proof that the gate is live: a synthetic 2x work blow-up
        // on every counter must trip any gate below 2.0.
        eprintln!("--inject-regression: doubling every work-unit counter");
        for e in &mut entries {
            for v in e.work.values_mut() {
                *v *= 2;
            }
        }
    }

    // The gate, when a baseline was given.
    let violations = match &baseline_path {
        Some(path) => {
            let baseline = parse_baseline(path).unwrap_or_else(|e| panic!("--baseline: {e}"));
            apply_gate(&entries, &baseline, gate)
        }
        None => Vec::new(),
    };

    // Render the JSON document.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(
        json,
        "  \"threads_env\": \"{}\",",
        std::env::var("EBDA_THREADS").unwrap_or_default()
    );
    let _ = writeln!(json, "  \"threads_resolved\": {},", ebda_par::threads());
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    if let Some(path) = &baseline_path {
        let _ = writeln!(json, "  \"gate\": {{");
        let _ = writeln!(json, "    \"baseline\": \"{path}\",");
        let _ = writeln!(json, "    \"ratio\": {gate},");
        let _ = writeln!(json, "    \"passed\": {},", violations.is_empty());
        let _ = writeln!(json, "    \"violations\": [");
        for (i, v) in violations.iter().enumerate() {
            let _ = writeln!(
                json,
                "      \"{}\"{}",
                v.replace('"', "'"),
                if i + 1 < violations.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "    ]");
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, e) in entries.iter().enumerate() {
        let work: Vec<String> = e
            .work
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns\": {:.0}, \"mode\": \"{}\", \"work\": {{{}}}}}{}",
            e.name,
            e.ns,
            e.mode,
            work.join(", "),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench report written to {path}");
        }
        None => print!("{json}"),
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nperf gate FAILED ({} violations):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
