//! Regenerates Figure 4: U-/I-turn formation with three VCs along one
//! dimension inside a partition, and the counting identity
//! `n(n-1)/2 = ab + C(a,2) + C(b,2)`.

use ebda_bench::compass_turn;
use ebda_core::adaptiveness::fig4_turn_counts;
use ebda_core::{extract_turns, PartitionSeq, TurnKind};

fn report(label: &str, seq: &PartitionSeq) {
    let ex = extract_turns(seq).expect("valid design");
    let c = ex.turn_set().counts();
    let u: Vec<String> = ex
        .turn_set()
        .of_kind(TurnKind::UTurn)
        .map(compass_turn)
        .collect();
    let i: Vec<String> = ex
        .turn_set()
        .of_kind(TurnKind::ITurn)
        .map(compass_turn)
        .collect();
    println!("{label}: {seq}");
    println!("  U-turns ({}): {}", u.len(), u.join(", "));
    println!("  I-turns ({}): {}", i.len(), i.join(", "));
    assert_eq!(
        (c.u_turns, c.i_turns),
        (9, 6),
        "paper: nine U- and six I-turns"
    );
}

fn main() {
    // Fig. 4(a): channels numbered pair-interleaved.
    report(
        "Fig. 4a",
        &PartitionSeq::parse("Y1+ Y1- Y2+ Y2- Y3+ Y3-").expect("static"),
    );
    // Fig. 4(b): an alternative arrangement, same counts.
    report(
        "Fig. 4b",
        &PartitionSeq::parse("Y1+ Y2+ Y3+ Y1- Y2- Y3-").expect("static"),
    );
    // Fig. 4(c): the complete pair of {X+ X- Y+}: one U-turn, selectable.
    let seq = PartitionSeq::parse("X+ X- Y+").expect("static");
    let ex = extract_turns(&seq).expect("valid");
    let u: Vec<String> = ex
        .turn_set()
        .of_kind(TurnKind::UTurn)
        .map(compass_turn)
        .collect();
    println!("Fig. 4c: {seq}");
    println!(
        "  chosen U-turn: {} (E1W1 or W1E1, fixed by the numbering)",
        u.join(", ")
    );
    assert_eq!(u.len(), 1);

    // The identity, swept.
    println!("\ncounting identity n(n-1)/2 = ab + C(a,2) + C(b,2):");
    println!(
        "{:>3} {:>3} | {:>6} {:>8} {:>8}",
        "a", "b", "total", "U-turns", "I-turns"
    );
    for (a, b) in [(1u64, 1u64), (2, 1), (2, 2), (3, 3), (4, 2), (5, 5)] {
        let (total, u, i) = fig4_turn_counts(a, b);
        println!("{a:>3} {b:>3} | {total:>6} {u:>8} {i:>8}");
        assert_eq!(total, u + i);
    }
    println!("identity holds (checked exhaustively for a,b < 20 in the test suite)");
}
