//! Regenerates Figure 3: a missing direction breaks the cycle — the
//! partition `{X+ X- Y-}` permits exactly the WS, SE, ES and SW turns.

use ebda_bench::compass_turn;
use ebda_cdg::{verify_design, Topology};
use ebda_core::{extract_turns, PartitionSeq, TurnKind};

fn main() {
    let seq = PartitionSeq::parse("X+ X- Y-").expect("static design");
    println!("partition: {seq}  (every direction but North)");
    let ex = extract_turns(&seq).expect("valid design");
    let ninety: Vec<String> = ex
        .turn_set()
        .of_kind(TurnKind::Ninety)
        .map(compass_turn)
        .collect();
    println!("allowed 90-degree turns: {}", ninety.join(", "));
    assert_eq!(ninety.len(), 4, "paper: WS, SE, ES, SW");
    for expected in ["W1S1", "S1E1", "E1S1", "S1W1"] {
        assert!(ninety.contains(&expected.to_string()), "missing {expected}");
    }
    let report = verify_design(&Topology::mesh(&[6, 6]), &seq).expect("valid");
    assert!(report.is_deadlock_free());
    println!("verified: {report}");
    println!("paper match: the formed turns by X+, X-, Y- are WS, SE, ES, SW — reproduced");
}
