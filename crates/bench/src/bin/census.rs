//! The certification census: for every routing implementation in the
//! repository, report the exact-CDG verdict and the channel-class scheme
//! (if any) under which a partitioning certificate exists — EbDa as an
//! automated design-review pipeline.

use ebda_routing::certify_relation::certify_relation;
use ebda_routing::classic::{
    DimensionOrder, DuatoFullyAdaptive, NegativeFirst, NorthLast, OddEven, TorusDateline, UpDown,
    WestFirst,
};
use ebda_routing::{verify_relation, RoutingRelation, Topology, TurnRouting};

fn report(name: &str, topo: &Topology, relation: &dyn RoutingRelation) {
    let exact = verify_relation(topo, relation).is_ok();
    let certificate = certify_relation(topo, relation);
    let (scheme, parts) = match &certificate {
        Some(c) => (c.scheme.to_string(), c.design.len().to_string()),
        None => ("-".to_string(), "-".to_string()),
    };
    println!(
        "{name:<28} {:<14} {:<34} {parts:>5}",
        if exact { "acyclic" } else { "CYCLIC" },
        scheme
    );
}

fn main() {
    println!(
        "{:<28} {:<14} {:<34} {:>5}",
        "relation", "exact CDG", "certificate scheme", "parts"
    );
    println!("{:-<86}", "");

    let mesh = Topology::mesh(&[5, 5]);
    report("xy", &mesh, &DimensionOrder::xy());
    report("yx", &mesh, &DimensionOrder::yx());
    report("west-first", &mesh, &WestFirst::new());
    report("north-last", &mesh, &NorthLast::new());
    report("negative-first", &mesh, &NegativeFirst::new(2));
    report("odd-even (Chiu ROUTE)", &mesh, &OddEven::new());
    report(
        "hamiltonian (TurnRouting)",
        &mesh,
        &TurnRouting::from_design("ham", &ebda_core::catalog::hamiltonian()).unwrap(),
    );
    report(
        "dyxy 6ch (TurnRouting)",
        &mesh,
        &TurnRouting::from_design("fa", &ebda_core::catalog::fig7b_dyxy()).unwrap(),
    );
    report("up*/down* (corner root)", &mesh, &UpDown::new(&mesh));
    report(
        "up*/down* (central root)",
        &mesh,
        &UpDown::with_root(&mesh, mesh.node_at(&[2, 2])),
    );
    report("duato adaptive+escape", &mesh, &DuatoFullyAdaptive::new(2));

    let torus = Topology::torus(&[4, 4]);
    report("torus dateline", &torus, &TorusDateline::new(2));
    report(
        "torus w/o dateline",
        &torus,
        &TorusDateline::without_dateline(2),
    );

    println!(
        "\nreading the table:\n\
         - corner-rooted up*/down* certifies as negative-first (its 'up' hops\n\
        \x20  are exactly the negative directions) while a central root is\n\
        \x20  deadlock-free but beyond channel-class certificates;\n\
         - odd-even certifies only under the column-parity split the paper\n\
        \x20  chooses by hand in Section 6.2;\n\
         - duato's full relation is exactly cyclic — its safety argument is\n\
        \x20  escape-channel reasoning, not an acyclic CDG (and it really\n\
        \x20  deadlocks with multi-packet buffers, see --bin simulate);\n\
         - the no-dateline torus routing is cyclic in the exact CDG even\n\
        \x20  though its class-level turn set looks harmless."
    );
}
