//! Regenerates Figure 8: the complete per-theorem turn extraction for the
//! 3D design with 2, 2, 4 VCs along X, Y, Z (the Fig. 9b partitioning).

use ebda_bench::{compass_turn, print_extraction};
use ebda_cdg::{verify_design, Topology};
use ebda_core::extract::Justification;
use ebda_core::{catalog, extract_turns, TurnKind};

fn main() {
    let seq = catalog::fig9b();
    println!("design: {seq}");
    println!("(E/W = X+-, N/S = Y+-, U/D = Z+-; digits are VC numbers)\n");
    let ex = extract_turns(&seq).expect("valid design");
    print_extraction(&seq, &ex);

    // The paper's box for PA lists exactly these Theorem-1 turns.
    let pa = ex.turns_for(Justification::Theorem1 { partition: 0 });
    let mut pa_turns: Vec<String> = pa.iter().map(compass_turn).collect();
    pa_turns.sort();
    let mut expected = vec![
        "E1U1", "E1D1", "E1N1", "N1U1", "N1D1", "N1E1", "U1E1", "U1N1", "D1E1", "D1N1",
    ];
    expected.sort_unstable();
    assert_eq!(pa_turns, expected, "PA Theorem-1 turns must match Fig. 8");

    // Each partition: 10 Theorem-1 turns + 1 Theorem-2 U-turn; each of the
    // six ordered transitions: a full 4x4 cross product (10 90deg + U + I).
    for p in 0..4 {
        assert_eq!(
            ex.turns_for(Justification::Theorem1 { partition: p }).len(),
            10
        );
        assert_eq!(
            ex.turns_for(Justification::Theorem2 { partition: p }).len(),
            1
        );
    }
    for i in 0..4 {
        for j in (i + 1)..4 {
            let th3 = ex.turns_for(Justification::Theorem3 { from: i, to: j });
            assert_eq!(th3.len(), 16);
            assert_eq!(th3.of_kind(TurnKind::Ninety).count(), 10);
        }
    }
    let c = ex.turn_set().counts();
    println!(
        "\ntotals: {} 90-degree turns, {} U-turns, {} I-turns ({} in all)",
        c.ninety,
        c.u_turns,
        c.i_turns,
        c.total()
    );

    let report = verify_design(&Topology::mesh(&[4, 4, 4]), &seq).expect("valid");
    assert!(report.is_deadlock_free());
    println!("verified on a 4x4x4 mesh: {report}");
    println!(
        "paper match: \"all these turns can be taken simultaneously without\n\
         forming a cycle\" — confirmed by the acyclic CDG"
    );
}
