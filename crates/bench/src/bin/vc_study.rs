//! VC budget study — the paper's opening claim ("VCs can be also used to
//! improve network performance and throughput through sharing resources
//! and providing alternative paths") made measurable: for growing VC
//! budgets, build the region-covering Algorithm 1 design and measure
//! latency and saturation.

use ebda_core::adaptiveness::is_fully_adaptive;
use ebda_core::algorithm1::partition_network_region_covering;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{saturation_rate, simulate, SimConfig, TrafficPattern};

fn main() {
    let topo = Topology::mesh(&[8, 8]);
    let base = SimConfig {
        traffic: TrafficPattern::Transpose,
        warmup: 500,
        measurement: 2_000,
        drain: 2_500,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    };
    println!("region-covering designs by VC budget, transpose traffic, 8x8 mesh");
    println!(
        "{:<10} {:>9} {:>13} {:>11} {:>11} {:>11}",
        "VCs", "channels", "adaptiveness", "lat@0.03", "lat@0.06", "saturation"
    );
    println!("{:-<70}", "");
    for vcs in [[1u8, 1], [1, 2], [2, 2], [2, 3], [3, 3]] {
        let seq = partition_network_region_covering(&vcs).expect("algorithm 1");
        let relation = TurnRouting::from_design("study", &seq).expect("valid design");
        let adaptive = if is_fully_adaptive(&seq, 2) {
            "full"
        } else {
            "partial"
        };
        let lat = |rate: f64| {
            let cfg = SimConfig {
                injection_rate: rate,
                ..base.clone()
            };
            let r = simulate(&topo, &relation, &cfg);
            assert!(r.outcome.is_deadlock_free(), "{r}");
            if r.measured_delivered == r.measured_injected {
                format!("{:.1}", r.avg_latency)
            } else {
                "sat".to_string()
            }
        };
        let sat = saturation_rate(&topo, &relation, &base, 0.005, 0.4, 0.01)
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:>9} {:>13} {:>11} {:>11} {:>11}",
            format!("{vcs:?}"),
            seq.channel_count(),
            adaptive,
            lat(0.03),
            lat(0.06),
            sat
        );
    }
    println!(
        "\nshape: the jump from [1,1] to the Section-4 minimum [1,2] is where\n\
         the payoff lives — full adaptiveness, lower latency and a higher\n\
         saturation point; beyond the minimum, extra VCs mostly add buffering\n\
         (the paper's Fig. 6e point: VCs inside a partition do not raise\n\
         adaptiveness)."
    );
}
