//! Regenerates the Section 2 scalability argument: brute-force turn-model
//! verification explodes as `4^c`, while EbDa constructs a verified design
//! directly.
//!
//! Reproduces (a) the Glass & Ni counts the paper cites (16 combinations,
//! 12 deadlock-free, 3 unique under symmetry), (b) the combination-count
//! table (with the paper's quoted values for comparison), and (c) a wall-
//! clock comparison of brute force vs EbDa construction.

use ebda_bench::trace::{write_telemetry, ObsOptions};
use ebda_cdg::turn_model::{
    abstract_cycle_count, combination_count, deadlock_free_combinations,
    deadlock_free_combinations_2d, unique_up_to_symmetry,
};
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm1::partition_network;
use std::time::Instant;

fn main() {
    // `--trace-out <path>` / `EBDA_TRACE`: export the verification-path
    // telemetry (spans over find_cycle/tarjan/builds, partition counters).
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();

    // (a) The exhaustive 2D check.
    let t0 = Instant::now();
    let free = deadlock_free_combinations_2d(6);
    let brute_time = t0.elapsed();
    let unique = unique_up_to_symmetry(&free);
    println!("2D turn-model enumeration on a 6x6 mesh:");
    println!("  combinations checked : 16");
    println!(
        "  deadlock-free        : {} (paper/Glass & Ni: 12)",
        free.len()
    );
    println!(
        "  unique under symmetry: {unique} (paper: 3 — west-first, north-last, negative-first)"
    );
    assert_eq!(free.len(), 12);
    assert_eq!(unique, 3);

    // (a') The same enumeration in 3D: already 4^6 = 4096 combinations.
    let t0 = Instant::now();
    let free3 = deadlock_free_combinations(3, 4);
    let brute3_time = t0.elapsed();
    println!("\n3D turn-model enumeration on a 4x4x4 mesh:");
    println!("  combinations checked : 4096 (4^6)");
    println!("  deadlock-free        : {}", free3.len());
    println!(
        "  wall clock           : {brute3_time:.2?} (2D took {brute_time:.2?}) — the growth Section 2 warns about"
    );
    println!(
        "  unique under the 48-element cube symmetry group: 9 (this repo's\n\
         \x20 measurement — the 3D analogue of Glass & Ni's 3; see\n\
         \x20 turn_model::unique_turn_sets_up_to_symmetry)"
    );

    // (a'') The 2D-with-VCs space: 65,536 combinations (sampled).
    let t0 = Instant::now();
    let (checked, free_vc) = ebda_cdg::turn_model::sample_deadlock_free_2d_vc(2, 5, 2_000, 0xEBDA);
    println!(
        "\n2D + 1 VC per dimension (the paper's 65,536 = 4^8 space), sampled:\n\
         \x20 {checked} random combinations checked in {:.2?}: {free_vc} deadlock-free\n\
         \x20 (random prohibitions are almost never jointly safe with VCs —\n\
         \x20 the safe fraction collapses from 12/16, making hand search hopeless)",
        t0.elapsed()
    );

    // (b) Combination counts as the network grows.
    println!("\nverification-space size 4^c (c = abstract cycles):");
    println!(
        "{:<28} {:>8} {:>24} {:>20}",
        "configuration", "cycles", "combinations", "paper quotes"
    );
    let rows: &[(&str, &[u8], &str)] = &[
        ("2D, no VC", &[1, 1], "16 (4^2)"),
        ("2D, +1 VC per dim", &[2, 2], "65,536 (4^8)"),
        ("3D, no VC", &[1, 1, 1], "29,696 (4^6) [sic]"),
        ("3D, +1 VC per dim", &[2, 2, 2], "> 8 billion"),
        ("4D, +1 VC per dim", &[2, 2, 2, 2], "-"),
    ];
    for (name, vcs, quote) in rows {
        let c = abstract_cycle_count(vcs);
        let combos = combination_count(vcs)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "overflow".into());
        println!("{name:<28} {c:>8} {combos:>24} {quote:>20}");
    }
    println!(
        "  note: the paper's 3D-no-VC quote (29,696) disagrees with its own\n\
        formula 4^6 = 4,096; we report the formula value (see EXPERIMENTS.md)."
    );

    // (c) EbDa constructs the design directly — no enumeration.
    println!("\nEbDa construction + Dally verification vs brute-force enumeration:");
    let topo = Topology::mesh(&[6, 6]);
    for vcs in [&[1u8, 1][..], &[2, 2], &[1, 2], &[3, 3]] {
        let t0 = Instant::now();
        let seq = partition_network(vcs).expect("algorithm 1");
        let report = verify_design(&topo, &seq).expect("valid");
        let ebda_time = t0.elapsed();
        assert!(report.is_deadlock_free());
        println!(
            "  vcs {:?}: EbDa designed+verified in {:.2?} (brute force would check {} combos; the no-VC case took {:.2?} for 16)",
            vcs,
            ebda_time,
            combination_count(vcs)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "4^{c} (overflow)".into()),
            brute_time,
        );
    }
    println!(
        "\nshape match: EbDa is one construction + one linear CDG check; the\n\
         turn-model route multiplies the same CDG check by 4^c combinations."
    );

    // (d) Certification: reconstructing EbDa certificates from raw turn
    // sets agrees exactly with brute force in 2D and is sound-but-
    // incomplete in 3D.
    let universe2 = ebda_core::parse_channels("X+ X- Y+ Y-").expect("static");
    let mut certified2 = 0;
    for combo in ebda_cdg::turn_model::combinations_2d() {
        if ebda_core::certify::certify(&universe2, &combo.allowed).is_ok() {
            certified2 += 1;
        }
    }
    println!(
        "\nEbDa certification (turn set -> partitioning certificate):\n\
         2D: {certified2}/16 combinations certifiable = exactly the 12 deadlock-free ones\n\
         3D: 32/176 deadlock-free combinations certifiable, 0 unsound\n\
             (sound but incomplete at channel-class granularity; see\n\
             tests/certification.rs and EXPERIMENTS.md)"
    );
    assert_eq!(certified2, 12);

    if let Some(path) = &obs.trace {
        write_telemetry(path);
    }
    obs.finish();
}
