//! Regenerates Figure 9: fully adaptive 3D routing — eight partitions / 24
//! channels reduced to four partitions / 16 channels, plus the Section 5
//! worked example (3, 2, 3 VCs) that produces the Fig. 9c design.

use ebda_cdg::{verify_design, Topology};
use ebda_core::adaptiveness::is_fully_adaptive;
use ebda_core::algorithm1::partition_sets;
use ebda_core::min_channels::{
    merged_partitioning, min_channels, region_partitioning, vcs_per_dimension,
};
use ebda_core::sets::DimensionSet;
use ebda_core::{catalog, Dimension, PartitionSeq};

fn show(label: &str, seq: &PartitionSeq, topo: &Topology) {
    let report = verify_design(topo, seq).expect("valid design");
    assert!(report.is_deadlock_free(), "{label}: {report}");
    assert!(is_fully_adaptive(seq, 3), "{label} must be fully adaptive");
    println!(
        "{label:<22} {} partitions, {} channels, VCs/dim {:?}",
        seq.len(),
        seq.channel_count(),
        vcs_per_dimension(seq, 3)
    );
    println!("   {seq}");
}

fn main() {
    let topo = Topology::mesh(&[3, 3, 3]);
    println!(
        "minimum channels for fully adaptive 3D routing: N = (3+1)*2^2 = {}\n",
        min_channels(3)
    );
    show("Fig. 9a (paper)", &catalog::fig9a(), &topo);
    show(
        "Fig. 9a (generated)",
        &region_partitioning(3).expect("construction"),
        &topo,
    );
    show("Fig. 9b (paper)", &catalog::fig9b(), &topo);
    show(
        "Fig. 9b (generated)",
        &merged_partitioning(3).expect("construction"),
        &topo,
    );
    show("Fig. 9c (paper)", &catalog::fig9c(), &topo);

    // The Section 5 worked example: Z as Set1 (interleaved), X interleaved,
    // Y sign-grouped — Algorithm 1 must output exactly Fig. 9c.
    let sets = vec![
        DimensionSet::interleaved(Dimension::Z, 3),
        DimensionSet::interleaved(Dimension::X, 3),
        DimensionSet::grouped(Dimension::Y, 2),
    ];
    let derived = partition_sets(sets).expect("algorithm 1");
    println!("\nSection 5 worked example (3,2,3 VCs), Algorithm 1 output:");
    println!("   {derived}");
    assert_eq!(
        derived,
        catalog::fig9c(),
        "Algorithm 1 must reproduce Fig. 9c"
    );
    println!("paper match: P = {{PA[Z1* X1+ Y1+]; PB[Z2* X1- Y2+]; PC[X2* Z3+ Y1-]; PD[X3* Z3- Y2-]}} — reproduced");

    assert_eq!(catalog::fig9a().channel_count(), 24);
    assert_eq!(catalog::fig9b().channel_count() as u64, min_channels(3));
    assert_eq!(catalog::fig9c().channel_count() as u64, min_channels(3));
}
