//! Runs every table/figure regeneration binary in sequence — the one-shot
//! EXPERIMENTS.md reproduction driver.
//!
//! Usage: `cargo run --release -p ebda-bench --bin all`

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "scalability",
        "census",
        "vc_study",
        "ablation",
        "simulate",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n=============== {bin} ===============");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(bin);
        }
    }
    println!("\n=====================================");
    if failed.is_empty() {
        println!("all {} experiments reproduced successfully", bins.len());
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}
