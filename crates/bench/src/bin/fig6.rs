//! Regenerates Figure 6: the five partitioning strategies P1–P5 of
//! Section 4 and the routing algorithms they induce.

use ebda_cdg::{verify_design, Topology};
use ebda_core::adaptiveness::{adaptiveness_profile, region_is_fully_adaptive};
use ebda_core::{catalog, extract_turns, parse_channels, Direction, PartitionSeq};

fn analyze(label: &str, seq: &PartitionSeq, topo: &Topology) {
    let ex = extract_turns(seq).expect("valid design");
    let c = ex.turn_set().counts();
    let report = verify_design(topo, seq).expect("valid");
    assert!(report.is_deadlock_free(), "{label}: {report}");
    use Direction::*;
    let regions = [
        ("NE", [Some(Plus), Some(Plus)]),
        ("SE", [Some(Plus), Some(Minus)]),
        ("SW", [Some(Minus), Some(Minus)]),
        ("NW", [Some(Minus), Some(Plus)]),
    ];
    let adaptive: Vec<&str> = regions
        .iter()
        .filter(|(_, r)| region_is_fully_adaptive(seq, r))
        .map(|(n, _)| *n)
        .collect();
    println!(
        "{label:<28} {:<42} 90deg={:<3} U={:<2} I={:<3} fully-adaptive regions: {}",
        seq.to_string(),
        c.ninety,
        c.u_turns,
        c.i_turns,
        if adaptive.is_empty() {
            "none".to_string()
        } else {
            adaptive.join(",")
        }
    );
}

fn main() {
    let topo = Topology::mesh(&[6, 6]);
    println!("Figure 6: partitioning strategies P1-P5\n");
    analyze("P1 (XY routing)", &catalog::p1_xy(), &topo);
    analyze(
        "P2 (partially adaptive)",
        &catalog::p2_partially_adaptive(),
        &topo,
    );
    analyze("P3 (west-first)", &catalog::p3_west_first(), &topo);
    analyze("P4 (negative-first)", &catalog::p4_negative_first(), &topo);
    analyze(
        "P5 (west-first + VCs)",
        &catalog::p5_west_first_vcs(),
        &topo,
    );

    // Quantify "VCs do not enhance adaptiveness" (Fig. 6e).
    let universe4 = parse_channels("X+ X- Y+ Y-").expect("static");
    let mut universe8 = universe4.clone();
    universe8.extend(parse_channels("Y2+ Y2-").expect("static"));
    let p3 = extract_turns(&catalog::p3_west_first()).expect("valid");
    let p5 = extract_turns(&catalog::p5_west_first_vcs()).expect("valid");
    let prof3 = adaptiveness_profile(p3.turn_set(), &universe4, 4, 2);
    let prof5 = adaptiveness_profile(p5.turn_set(), &universe8, 4, 2);
    println!(
        "\nminimal-path adaptiveness on a 4x4 mesh: P3 avg {:.3}, P5 avg {:.3}",
        prof3.sum as f64 / prof3.pairs as f64,
        prof5.sum as f64 / prof5.pairs as f64,
    );
    assert_eq!(
        prof3.sum, prof5.sum,
        "adding VCs inside a partition must not change geometric adaptiveness"
    );
    println!(
        "paper match: P5's extra VCs add identical/U/I-turns but no adaptiveness — reproduced"
    );
    // P1 has 4 turns; P3/P4 reach the maximum 6 with two partitions.
    assert_eq!(
        extract_turns(&catalog::p1_xy())
            .unwrap()
            .turn_set()
            .counts()
            .ninety,
        4
    );
    for seq in [catalog::p3_west_first(), catalog::p4_negative_first()] {
        assert_eq!(extract_turns(&seq).unwrap().turn_set().counts().ninety, 6);
    }
}
