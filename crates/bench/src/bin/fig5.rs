//! Regenerates Figure 5: the north-last derivation — `PA[X+ X- Y-] → PB[Y+]`
//! yields the north-last turn model plus its safe U-turns.

use ebda_bench::{compass_turn, print_extraction};
use ebda_cdg::{verify_design, Topology};
use ebda_core::{catalog, extract_turns, Channel, Turn, TurnKind};

fn main() {
    let seq = catalog::north_last();
    println!("design: {seq}\n");
    let ex = extract_turns(&seq).expect("valid design");
    print_extraction(&seq, &ex);

    let ninety: Vec<String> = ex
        .turn_set()
        .of_kind(TurnKind::Ninety)
        .map(compass_turn)
        .collect();
    assert_eq!(ninety.len(), 6, "north-last allows six 90-degree turns");
    let ch = |s: &str| Channel::parse(s).expect("static");
    // The NE and NW turns are prohibited (both out of North).
    assert!(!ex.turn_set().contains(Turn::new(ch("Y+"), ch("X+"))));
    assert!(!ex.turn_set().contains(Turn::new(ch("Y+"), ch("X-"))));
    // Fig. 5(b): one X U-turn; Fig. 5(c): the S->N U-turn via Theorem 3,
    // N->S naturally avoided.
    assert!(ex.turn_set().contains(Turn::new(ch("Y-"), ch("Y+"))));
    assert!(!ex.turn_set().contains(Turn::new(ch("Y+"), ch("Y-"))));

    let report = verify_design(&Topology::mesh(&[8, 8]), &seq).expect("valid");
    assert!(report.is_deadlock_free());
    println!("\nverified: {report}");
    println!("paper match: Theorem 1+3 turns = the north-last algorithm [18] — reproduced");
}
