//! Regenerates Table 2: partitioning options with three partitions,
//! offering some (reduced) adaptiveness — Section 5.3.2's knob.
//!
//! The paper lists the four corner-first options; symmetric ones follow by
//! changing the transition order. We generate the complete three-partition
//! design space, verify all of it, and print the paper's four rows.

use ebda_bench::table_entry;
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm2::enumerate_partitionings;
use ebda_core::parse_channels;

fn main() {
    let channels = parse_channels("X+ X- Y+ Y-").expect("static channels");
    let all = enumerate_partitionings(&channels, 3);
    let topo = Topology::mesh(&[6, 6]);
    for seq in &all {
        let report = verify_design(&topo, seq).expect("valid");
        assert!(report.is_deadlock_free(), "{seq}: {report}");
    }

    println!("Table 2: partitioning options leading to some degrees of adaptiveness");
    println!("{:-<72}", "");
    // The paper's four rows: PA = a corner pair, then the opposite X, then
    // the opposite Y.
    let paper_rows = [
        "X1+ Y1+ -> X1- -> Y1-",
        "X1+ Y1- -> X1- -> Y1+",
        "X1- Y1+ -> X1+ -> Y1-",
        "X1- Y1- -> X1+ -> Y1+",
    ];
    for row in paper_rows.chunks(2) {
        println!("{:<34} | {:<34}", row[0], row.get(1).copied().unwrap_or(""));
    }
    println!("{:-<72}", "");
    for expected in paper_rows {
        assert!(
            all.iter().any(|s| table_entry(s) == expected),
            "paper row {expected} not generated"
        );
    }
    println!(
        "all {} three-partition options verified deadlock-free on a 6x6 mesh \
         (the paper lists the 4 corner-first ones)",
        all.len()
    );
}
