//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * **A1 — the partition-count knob** (Section 5.3.2): the same four
//!   channels as 2, 3 and 4 partitions, simulated at fixed load — fewer
//!   partitions ⇒ more adaptiveness ⇒ later saturation.
//! * **A2 — arrangement ordering**: plain Arrangement 1 vs the
//!   region-covering ordering across VC budgets — ordering decides whether
//!   Algorithm 1's output is fully adaptive.
//! * **A3 — allocator selection policy**: rotating first-fit vs
//!   congestion-aware most-credits for the fully adaptive design.
//! * **A4 — buffer policy**: multi-packet vs single-packet (Duato
//!   Assumption 3) buffers for a partially adaptive design.

use ebda_core::adaptiveness::is_fully_adaptive;
use ebda_core::algorithm1::{partition_network, partition_network_region_covering};
use ebda_core::PartitionSeq;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, BufferPolicy, Selection, SimConfig, TrafficPattern};

fn run(
    seq: &PartitionSeq,
    topo: &Topology,
    rate: f64,
    selection: Selection,
    policy: BufferPolicy,
) -> noc_sim::SimResult {
    let relation = TurnRouting::from_design("ablation", seq).expect("valid design");
    let cfg = SimConfig {
        injection_rate: rate,
        traffic: TrafficPattern::Transpose,
        selection,
        buffer_policy: policy,
        warmup: 500,
        measurement: 2_000,
        drain: 2_500,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    };
    simulate(topo, &relation, &cfg)
}

fn main() {
    let topo = Topology::mesh(&[8, 8]);

    println!("A1: partition count (same 4 channels), transpose traffic");
    println!("{:<42} {:>11} {:>11}", "design", "lat@0.03", "lat@0.06");
    for (label, spec) in [
        ("2 partitions (west-first, max adaptive)", "X- | X+ Y+ Y-"),
        ("3 partitions (Table 2 row 1)", "X+ Y+ | X- | Y-"),
        ("4 partitions (XY, deterministic)", "X+ | X- | Y+ | Y-"),
    ] {
        let seq = PartitionSeq::parse(spec).expect("static design");
        let a = run(
            &seq,
            &topo,
            0.03,
            Selection::RotatingFirstFit,
            BufferPolicy::MultiPacket,
        );
        let b = run(
            &seq,
            &topo,
            0.06,
            Selection::RotatingFirstFit,
            BufferPolicy::MultiPacket,
        );
        println!(
            "{:<42} {:>11.1} {:>11.1}",
            label, a.avg_latency, b.avg_latency
        );
        assert!(a.outcome.is_deadlock_free() && b.outcome.is_deadlock_free());
    }

    println!("\nA2: arrangement ordering vs full adaptiveness (Algorithm 1)");
    println!(
        "{:<14} {:>14} {:>18}",
        "VC budget", "plain", "region-covering"
    );
    for vcs in [vec![1u8, 2], vec![2, 2], vec![2, 2, 4], vec![3, 2, 3]] {
        let n = vcs.len();
        let plain = partition_network(&vcs).expect("algorithm 1");
        let region = partition_network_region_covering(&vcs).expect("algorithm 1");
        println!(
            "{:<14} {:>14} {:>18}",
            format!("{vcs:?}"),
            if is_fully_adaptive(&plain, n) {
                "fully adpt"
            } else {
                "partial"
            },
            if is_fully_adaptive(&region, n) {
                "fully adpt"
            } else {
                "partial"
            },
        );
    }

    println!("\nA3: allocator selection for the fully adaptive 6-channel design");
    let dyxy = ebda_core::catalog::fig7b_dyxy();
    println!("{:<24} {:>11} {:>11}", "policy", "lat@0.04", "lat@0.08");
    for (label, sel) in [
        ("rotating first-fit", Selection::RotatingFirstFit),
        ("most-credits (DyXY)", Selection::MostCredits),
    ] {
        let a = run(&dyxy, &topo, 0.04, sel, BufferPolicy::MultiPacket);
        let b = run(&dyxy, &topo, 0.08, sel, BufferPolicy::MultiPacket);
        println!(
            "{:<24} {:>11.1} {:>11.1}",
            label, a.avg_latency, b.avg_latency
        );
        assert!(a.outcome.is_deadlock_free() && b.outcome.is_deadlock_free());
    }

    println!("\nA4: buffer policy for west-first");
    let wf = ebda_core::catalog::p3_west_first();
    println!("{:<24} {:>11} {:>11}", "policy", "lat@0.03", "lat@0.06");
    for (label, policy) in [
        ("multi-packet (EbDa)", BufferPolicy::MultiPacket),
        ("single-packet (Duato)", BufferPolicy::SinglePacket),
    ] {
        let a = run(&wf, &topo, 0.03, Selection::RotatingFirstFit, policy);
        let b = run(&wf, &topo, 0.06, Selection::RotatingFirstFit, policy);
        println!(
            "{:<24} {:>11.1} {:>11.1}",
            label, a.avg_latency, b.avg_latency
        );
        assert!(a.outcome.is_deadlock_free() && b.outcome.is_deadlock_free());
    }
}
