//! Regenerates Figure 7: fully adaptive 2D routing with the minimum number
//! of channels — from 4 partitions / 8 channels down to 2 partitions /
//! 6 channels (`N = (n+1)·2^(n-1) = 6`).

use ebda_cdg::{verify_design, Topology};
use ebda_core::adaptiveness::is_fully_adaptive;
use ebda_core::min_channels::{
    merged_partitioning, min_channels, region_partitioning, vcs_per_dimension,
};
use ebda_core::{catalog, PartitionSeq};

fn show(label: &str, seq: &PartitionSeq, topo: &Topology) {
    let report = verify_design(topo, seq).expect("valid design");
    assert!(report.is_deadlock_free(), "{label}: {report}");
    assert!(is_fully_adaptive(seq, 2), "{label} must be fully adaptive");
    println!(
        "{label:<22} {seq}  [{} partitions, {} channels, VCs/dim {:?}]",
        seq.len(),
        seq.channel_count(),
        vcs_per_dimension(seq, 2)
    );
}

fn main() {
    let topo = Topology::mesh(&[5, 5]);
    println!(
        "minimum channels for fully adaptive 2D routing: N = (2+1)*2^1 = {}\n",
        min_channels(2)
    );
    show("Fig. 7a (paper)", &catalog::fig7a(), &topo);
    show(
        "Fig. 7a (generated)",
        &region_partitioning(2).expect("construction"),
        &topo,
    );
    show("Fig. 7b (DyXY)", &catalog::fig7b_dyxy(), &topo);
    show(
        "Fig. 7b (generated)",
        &merged_partitioning(2).expect("construction"),
        &topo,
    );
    show("Fig. 7c", &catalog::fig7c(), &topo);

    assert_eq!(
        catalog::fig7b_dyxy().channel_count() as u64,
        min_channels(2)
    );
    assert_eq!(catalog::fig7c().channel_count() as u64, min_channels(2));
    println!(
        "\npaper match: 8-channel naive design reduces to two 6-channel designs\n\
         (1+2 or 2+1 VCs); 6 = (n+1)*2^(n-1) is the minimum — reproduced"
    );
}
