//! Full latency/throughput sweep across designs, traffic patterns and
//! injection rates, emitted as CSV for plotting — the data series behind
//! the extension experiments E1/E2.
//!
//! Usage: `cargo run --release -p ebda-bench --bin sweep [out.csv]`
//! (defaults to stdout). Columns:
//! `design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,throughput,balance_cv,outcome`

//! `--trace-out <path>` (or `EBDA_TRACE`) additionally writes the
//! telemetry snapshot (spans + counters across all runs) as JSON.

use ebda_bench::trace::{trace_path, write_telemetry};
use ebda_routing::classic::{DimensionOrder, DuatoFullyAdaptive};
use ebda_routing::{RoutingRelation, Topology, TurnRouting};
use noc_sim::{simulate, BufferPolicy, SimConfig, TrafficPattern};
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = trace_path(&mut args);
    if trace.is_some() {
        ebda_obs::telemetry::set_enabled(true);
    }
    let mut out: Box<dyn Write> = match args.first() {
        Some(path) => Box::new(std::fs::File::create(path).expect("create output file")),
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        out,
        "design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,throughput,balance_cv,outcome"
    )
    .expect("write header");

    let topo = Topology::mesh(&[8, 8]);
    let designs: Vec<(&str, Box<dyn RoutingRelation>)> = vec![
        ("xy", Box::new(DimensionOrder::xy())),
        (
            "west-first",
            Box::new(TurnRouting::from_design("wf", &ebda_core::catalog::p3_west_first()).unwrap()),
        ),
        (
            "odd-even",
            Box::new(TurnRouting::from_design("oe", &ebda_core::catalog::odd_even()).unwrap()),
        ),
        (
            "ebda-dyxy",
            Box::new(TurnRouting::from_design("fa", &ebda_core::catalog::fig7b_dyxy()).unwrap()),
        ),
        ("duato", Box::new(DuatoFullyAdaptive::new(2))),
    ];
    let traffics = [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("bitcomp", TrafficPattern::BitComplement),
    ];
    let rates = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12];

    for (name, relation) in &designs {
        for (tname, traffic) in &traffics {
            for &rate in &rates {
                for (pname, policy) in [
                    ("multi", BufferPolicy::MultiPacket),
                    ("single", BufferPolicy::SinglePacket),
                ] {
                    let cfg = SimConfig {
                        injection_rate: rate,
                        traffic: traffic.clone(),
                        buffer_policy: policy,
                        warmup: 500,
                        measurement: 2_000,
                        drain: 2_500,
                        deadlock_threshold: 1_200,
                        ..SimConfig::default()
                    };
                    let r = simulate(&topo, relation.as_ref(), &cfg);
                    let outcome = if r.outcome.is_deadlock_free() {
                        if r.measured_delivered == r.measured_injected {
                            "ok"
                        } else {
                            "saturated"
                        }
                    } else {
                        "deadlock"
                    };
                    writeln!(
                        out,
                        "{name},{tname},{rate},{pname},{:.2},{},{},{:.4},{:.3},{outcome}",
                        r.avg_latency,
                        r.latency_percentile(50.0).unwrap_or(0),
                        r.latency_percentile(99.0).unwrap_or(0),
                        r.throughput,
                        r.channel_balance_cv().unwrap_or(f64::NAN),
                    )
                    .expect("write row");
                }
            }
        }
    }
    if let Some(path) = &trace {
        write_telemetry(path);
    }
}
