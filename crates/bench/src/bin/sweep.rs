//! Full latency/throughput sweep across designs, traffic patterns and
//! injection rates, emitted as CSV for plotting — the data series behind
//! the extension experiments E1/E2. The matrix itself lives in
//! [`ebda_bench::sweep_matrix`]; this binary only parses flags.
//!
//! Usage: `cargo run --release -p ebda-bench --bin sweep [out.csv]`
//! (defaults to stdout). Columns:
//! `design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,p999_latency,throughput,balance_cv,outcome`
//!
//! Quantiles come from the engine's log-bucketed latency histograms
//! (≤6.25% relative error); the raw per-packet latency vector and its
//! per-point sort are skipped entirely.
//!
//! Points run in parallel (`--threads N`, env `EBDA_THREADS`, default
//! hardware parallelism) and the CSV is byte-identical at every thread
//! count — rows merge in matrix order, not completion order.
//!
//! Observability: `--trace-out <path>` (or `EBDA_TRACE`) writes the
//! telemetry snapshot on exit; `--journey-out <path>` (or
//! `EBDA_JOURNEY_OUT`) records per-packet journeys of every point —
//! one Chrome-trace "process" per point, thinned with
//! `--journey-sample-rate <p>` — and writes the merged timeline on
//! exit; `--metrics-addr <host:port>` (or `EBDA_METRICS_ADDR`) serves
//! live Prometheus metrics at `/metrics` while the sweep runs, with
//! `--metrics-linger <secs>` keeping the endpoint up after the last
//! point so scrapers can collect the final state; `--profile-out
//! <path>` (or `EBDA_PROFILE_OUT`) enables the deterministic
//! self-profiler and writes the phase/worker report on exit (render
//! with `ebda profile <path>`). `--quick` shrinks the matrix to a
//! smoke-test size.

use ebda_bench::sweep_matrix::run_sweep;
use ebda_bench::trace::{write_telemetry, ObsOptions};
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let quick = match args.iter().position(|a| a == "--quick") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };

    let result = run_sweep(quick, obs.threads, obs.journey_config());

    match args.first() {
        Some(path) => {
            std::fs::File::create(path)
                .and_then(|mut f| f.write_all(result.csv.as_bytes()))
                .expect("write output file");
        }
        None => {
            std::io::stdout()
                .lock()
                .write_all(result.csv.as_bytes())
                .expect("write csv");
        }
    }
    if let Some(path) = &obs.trace {
        write_telemetry(path);
    }
    if let (Some(mut builder), Some(path)) = (result.journeys, &obs.journey) {
        // With the profiler on, the worker busy timeline renders next to
        // the per-point packet journeys in the same Perfetto tab.
        if ebda_obs::prof::enabled() {
            builder.add_worker_timeline("workers", &ebda_obs::prof::snapshot().workers);
        }
        std::fs::write(path, builder.finish())
            .unwrap_or_else(|e| panic!("write journey {}: {e}", path.display()));
        eprintln!(
            "journeys: merged sweep timeline written to {}",
            path.display()
        );
    }
    obs.finish();
}
