//! Full latency/throughput sweep across designs, traffic patterns and
//! injection rates, emitted as CSV for plotting — the data series behind
//! the extension experiments E1/E2.
//!
//! Usage: `cargo run --release -p ebda-bench --bin sweep [out.csv]`
//! (defaults to stdout). Columns:
//! `design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,p999_latency,throughput,balance_cv,outcome`
//!
//! Quantiles come from the engine's log-bucketed latency histograms
//! (≤6.25% relative error); the raw per-packet latency vector and its
//! per-point sort are skipped entirely.
//!
//! Observability: `--trace-out <path>` (or `EBDA_TRACE`) writes the
//! telemetry snapshot on exit; `--journey-out <path>` (or
//! `EBDA_JOURNEY_OUT`) records per-packet journeys of every point —
//! one Chrome-trace "process" per point, thinned with
//! `--journey-sample-rate <p>` — and writes the merged timeline on
//! exit; `--metrics-addr <host:port>` (or `EBDA_METRICS_ADDR`) serves
//! live Prometheus metrics at `/metrics` while the sweep runs, with
//! `--metrics-linger <secs>` keeping the endpoint up after the last
//! point so scrapers can collect the final state. `--quick` shrinks
//! the matrix to a smoke-test size.

use ebda_bench::trace::{journey_recorder, write_telemetry, ObsOptions};
use ebda_obs::TraceBuilder;
use ebda_routing::classic::{DimensionOrder, DuatoFullyAdaptive};
use ebda_routing::{RoutingRelation, Topology, TurnRouting};
use noc_sim::{simulate, simulate_traced, BufferPolicy, SimConfig, TrafficPattern};
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let quick = match args.iter().position(|a| a == "--quick") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let mut out: Box<dyn Write> = match args.first() {
        Some(path) => Box::new(std::fs::File::create(path).expect("create output file")),
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        out,
        "design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,p999_latency,throughput,balance_cv,outcome"
    )
    .expect("write header");

    let topo = if quick {
        Topology::mesh(&[4, 4])
    } else {
        Topology::mesh(&[8, 8])
    };
    let mut designs: Vec<(&str, Box<dyn RoutingRelation>)> = vec![
        ("xy", Box::new(DimensionOrder::xy())),
        (
            "ebda-dyxy",
            Box::new(TurnRouting::from_design("fa", &ebda_core::catalog::fig7b_dyxy()).unwrap()),
        ),
    ];
    if !quick {
        designs.push((
            "west-first",
            Box::new(TurnRouting::from_design("wf", &ebda_core::catalog::p3_west_first()).unwrap()),
        ));
        designs.push((
            "odd-even",
            Box::new(TurnRouting::from_design("oe", &ebda_core::catalog::odd_even()).unwrap()),
        ));
        designs.push(("duato", Box::new(DuatoFullyAdaptive::new(2))));
    }
    let traffics: &[(&str, TrafficPattern)] = if quick {
        &[("uniform", TrafficPattern::Uniform)]
    } else {
        &[
            ("uniform", TrafficPattern::Uniform),
            ("transpose", TrafficPattern::Transpose),
            ("bitcomp", TrafficPattern::BitComplement),
        ]
    };
    let rates: &[f64] = if quick {
        &[0.02, 0.05]
    } else {
        &[0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12]
    };

    let mut journeys = obs.journey_config().map(|_| TraceBuilder::new());
    for (name, relation) in &designs {
        for (tname, traffic) in traffics {
            for &rate in rates {
                for (pname, policy) in [
                    ("multi", BufferPolicy::MultiPacket),
                    ("single", BufferPolicy::SinglePacket),
                ] {
                    let cfg = SimConfig {
                        injection_rate: rate,
                        traffic: traffic.clone(),
                        buffer_policy: policy,
                        warmup: if quick { 100 } else { 500 },
                        measurement: if quick { 400 } else { 2_000 },
                        drain: if quick { 600 } else { 2_500 },
                        deadlock_threshold: if quick { 400 } else { 1_200 },
                        collect_latencies: false,
                        ..SimConfig::default()
                    };
                    let r = if let Some(builder) = journeys.as_mut() {
                        // One journey-only recorder per point, merged
                        // into a single timeline: each point becomes
                        // its own Chrome-trace process.
                        let jcfg = obs.journey_config().expect("journeys requested");
                        let mut rec = journey_recorder(jcfg);
                        let r = simulate_traced(&topo, relation.as_ref(), &cfg, Some(&mut rec));
                        let label = format!("{name} {tname} rate {rate} {pname}");
                        builder.add_run(&label, rec.journeys().expect("journeys attached"));
                        r
                    } else {
                        simulate(&topo, relation.as_ref(), &cfg)
                    };
                    ebda_obs::metrics::counter_add("ebda_sweep_points_total", &[], 1);
                    let outcome = if r.outcome.is_deadlock_free() {
                        if r.measured_delivered == r.measured_injected {
                            "ok"
                        } else {
                            "saturated"
                        }
                    } else {
                        "deadlock"
                    };
                    writeln!(
                        out,
                        "{name},{tname},{rate},{pname},{:.2},{},{},{},{:.4},{:.3},{outcome}",
                        r.avg_latency,
                        r.latency_hist.quantile(0.50).unwrap_or(0),
                        r.latency_hist.quantile(0.99).unwrap_or(0),
                        r.latency_hist.quantile(0.999).unwrap_or(0),
                        r.throughput,
                        r.channel_balance_cv().unwrap_or(f64::NAN),
                    )
                    .expect("write row");
                }
            }
        }
    }
    if let Some(path) = &obs.trace {
        write_telemetry(path);
    }
    if let (Some(builder), Some(path)) = (journeys, &obs.journey) {
        std::fs::write(path, builder.finish())
            .unwrap_or_else(|e| panic!("write journey {}: {e}", path.display()));
        eprintln!(
            "journeys: merged sweep timeline written to {}",
            path.display()
        );
    }
    obs.finish();
}
