//! Driver behind the `oracle` binary: flag parsing, campaign execution,
//! result reporting and the process exit code.
//!
//! Usage: `cargo run --release --bin oracle -- [flags]`
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--budget <secs>` | 10 | wall-clock generation budget |
//! | `--seed <n>` | 7 | seed of the artifact stream |
//! | `--min-configs <n>` | 500 | keep generating until this many checked |
//! | `--max-configs <n>` | unlimited | hard ceiling on artifacts |
//! | `--max-nodes <n>` | 36 | topology size ceiling |
//! | `--mutate <name>` | none | deliberately break a checker (`dally-ignores-wrap`, `ebda-skips-theorem1`) |
//! | `--expect-disagreement` | off | exit 0 iff a disagreement IS found (mutation self-check) |
//! | `--trace-out <path>` | off | write the replay trace (on disagreement) or the telemetry snapshot |
//! | `--journey-out <path>` | off | write the caught replay's packet journeys as a Chrome trace (`EBDA_JOURNEY_OUT`) |
//! | `--journey-sample-rate <p>` | 1.0 | fraction of replay packets journey-traced (`EBDA_JOURNEY_SAMPLE_RATE`) |
//! | `--metrics-addr <host:port>` | off | serve live campaign metrics at `/metrics` (`EBDA_METRICS_ADDR`) |
//! | `--metrics-linger <secs>` | 0 | keep the metrics endpoint up that long after the campaign |
//! | `--threads <n>` | hardware | worker threads for artifact checking and shrinking (`EBDA_THREADS`); results are identical at every value |
//! | `--ledger <path>` | off | append one provenance-carrying run-ledger record per verdict (`EBDA_LEDGER`); bytes are identical at every thread count |
//! | `--coverage-out <path>` | off | write the campaign's merged design-space coverage map as canonical JSON; bytes are identical at every thread count |
//! | `--coverage-guided` | off | bias generation toward uncovered design-space bins (seed-deterministic rejection sampling) |
//! | `--incremental <on\|off>` | on | dirty-SCC incremental re-verification in the shrinker (`EBDA_INCREMENTAL`); verdicts, ledger and coverage bytes are identical either way |
//!
//! The exit code is 0 when the outcome matches the expectation — clean by
//! default, caught-disagreement under `--expect-disagreement` — and 1
//! otherwise, so both the CI guard and its self-check are one invocation.

use crate::trace::{write_telemetry, ObsOptions};
use ebda_oracle::differential::{run_campaign, CampaignConfig};
use ebda_oracle::verdict::Mutation;
use std::time::Duration;

/// Removes `--flag value` from `args` and parses the value.
///
/// # Panics
///
/// Panics (with a usage message) when the flag has no or a malformed value.
fn take<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    assert!(i + 1 < args.len(), "{flag} needs a value");
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{flag}: cannot parse {raw:?}"),
    }
}

/// Removes a boolean `--flag` from `args`, returning whether it was there.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Parses `args` (without the program name), runs the campaign, prints the
/// report and returns the process exit code.
pub fn run(mut args: Vec<String>) -> i32 {
    let mut obs = ObsOptions::parse(&mut args);
    obs.activate();
    let trace = obs.trace.clone();
    let budget: u64 = take(&mut args, "--budget").unwrap_or(10);
    let seed: u64 = take(&mut args, "--seed").unwrap_or(7);
    let min_configs: usize = take(&mut args, "--min-configs").unwrap_or(500);
    let max_configs: usize = take(&mut args, "--max-configs").unwrap_or(usize::MAX);
    let max_nodes: usize = take(&mut args, "--max-nodes").unwrap_or(36);
    let mutation = match take::<String>(&mut args, "--mutate") {
        Some(name) => match Mutation::parse(&name) {
            Some(m) => m,
            None => {
                eprintln!(
                    "unknown mutation {name:?} (try dally-ignores-wrap, ebda-skips-theorem1)"
                );
                return 2;
            }
        },
        None => Mutation::None,
    };
    let expect_disagreement = take_switch(&mut args, "--expect-disagreement");
    let ledger = take::<String>(&mut args, "--ledger")
        .or_else(|| std::env::var("EBDA_LEDGER").ok().filter(|v| !v.is_empty()))
        .map(std::path::PathBuf::from);
    let coverage = take::<String>(&mut args, "--coverage-out").map(std::path::PathBuf::from);
    let coverage_guided = take_switch(&mut args, "--coverage-guided");
    match take::<String>(&mut args, "--incremental").as_deref() {
        Some("on") => ebda_oracle::incr::set_enabled(true),
        Some("off") => ebda_oracle::incr::set_enabled(false),
        Some(other) => {
            eprintln!("--incremental: expected on|off, got {other:?}");
            return 2;
        }
        None => {}
    }
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        return 2;
    }
    if let Some(path) = &ledger {
        // Register the ledger with the /ledger route of a live
        // --metrics-addr endpoint.
        ebda_obs::ledger::set_global_path(Some(path.clone()));
    }
    if let Some(path) = &coverage {
        // Same deal for the /coverage route.
        ebda_obs::coverage::set_global_path(Some(path.clone()));
    }

    let cfg = CampaignConfig {
        seed,
        budget: Duration::from_secs(budget),
        min_configs,
        max_configs,
        max_nodes,
        mutation,
        journey_sample_rate: obs.journey_sample_rate,
        threads: obs.threads,
        ledger: ledger.clone(),
        coverage: coverage.clone(),
        coverage_guided,
    };
    if mutation != Mutation::None {
        println!("running with mutated checker: {mutation}");
    }
    let report = run_campaign(&cfg);
    println!("{report}");
    if let Some(path) = &ledger {
        eprintln!(
            "ledger: {} verdicts appended to {} ({} threads)",
            report.configs,
            path.display(),
            obs.threads
        );
    }
    if let (Some(path), Some(map)) = (&coverage, &report.coverage) {
        eprintln!(
            "coverage: {} points across {} families written to {} (digest {})",
            map.total_points(),
            ebda_obs::coverage::FAMILIES.len(),
            path.display(),
            map.digest()
        );
    }

    if let Some(path) = &trace {
        match report.caught.as_ref().and_then(|c| c.replay.as_ref()) {
            Some(replay) => {
                std::fs::write(path, &replay.trace_json)
                    .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
                eprintln!("replay trace written to {}", path.display());
            }
            None => write_telemetry(path),
        }
    }
    if let Some(path) = &obs.journey {
        match report.caught.as_ref().and_then(|c| c.replay.as_ref()) {
            Some(replay) => {
                std::fs::write(path, &replay.journey_json)
                    .unwrap_or_else(|e| panic!("write journey {}: {e}", path.display()));
                eprintln!("replay journeys written to {}", path.display());
            }
            None => eprintln!(
                "journeys: campaign was clean, nothing replayed, {} not written",
                path.display()
            ),
        }
    }
    obs.finish();

    let found = !report.is_clean();
    match (found, expect_disagreement) {
        (false, false) => 0,
        (true, true) => {
            println!("disagreement found, as expected");
            0
        }
        (true, false) => {
            eprintln!("FAIL: verdict paths disagreed");
            1
        }
        (false, true) => {
            eprintln!(
                "FAIL: expected the mutated checker to be caught, but the campaign was clean"
            );
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn clean_run_exits_zero() {
        let code = run(argv("--budget 0 --min-configs 20 --max-nodes 16"));
        assert_eq!(code, 0);
    }

    #[test]
    fn mutation_self_check_exits_zero_only_with_expectation() {
        let args = "--budget 0 --min-configs 400 --max-configs 400 --max-nodes 16 \
                    --mutate dally-ignores-wrap --expect-disagreement";
        assert_eq!(run(argv(args)), 0);
    }

    #[test]
    fn coverage_flags_produce_a_canonical_map_file() {
        let path =
            std::env::temp_dir().join(format!("ebda-oracle-cli-cov-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let code = run(argv(&format!(
            "--budget 0 --min-configs 20 --max-configs 20 --max-nodes 16 \
             --coverage-guided --coverage-out {}",
            path.display()
        )));
        assert_eq!(code, 0);
        let map = ebda_obs::CoverageMap::read_file(&path).unwrap();
        assert!(map.total_points() > 0);
        assert!(map.key().starts_with("oracle-seed-7-"), "{}", map.key());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert_eq!(run(argv("--frobnicate")), 2);
        assert_eq!(run(argv("--mutate nonsense")), 2);
        // Rejected before any global-mode change, so this cannot leak
        // into the other tests in this process.
        assert_eq!(run(argv("--incremental sideways")), 2);
    }
}
