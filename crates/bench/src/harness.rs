//! A minimal wall-clock timing harness for the `benches/` targets: warms
//! up, auto-scales the iteration count to a per-case time budget, and
//! reports mean and best-batch nanoseconds per iteration.
//!
//! This intentionally trades statistical machinery for zero dependencies;
//! treat the numbers as order-of-magnitude costs, not microbenchmark
//! truth. `EBDA_BENCH_BUDGET_MS` overrides the per-case budget.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One timed case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label (`group/name` by convention).
    pub name: String,
    /// Total timed iterations.
    pub iters: u64,
    /// Mean nanoseconds per iteration across all batches.
    pub mean_ns: f64,
    /// Mean nanoseconds per iteration of the fastest batch — the usual
    /// "minimum sustainable cost" estimate.
    pub best_ns: f64,
}

impl Measurement {
    /// Renders `123.4 us/iter` style, choosing a readable unit.
    pub fn human(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} us", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }

    /// Prints one aligned result line.
    pub fn print(&self) {
        println!(
            "{:<44} {:>12}/iter (best {:>12}, {} iters)",
            self.name,
            Self::human(self.mean_ns),
            Self::human(self.best_ns),
            self.iters
        );
    }
}

fn budget() -> Duration {
    let ms = std::env::var("EBDA_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Times `f`, printing and returning the measurement.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // One untimed call warms caches and estimates the per-iteration cost.
    let t0 = Instant::now();
    black_box(f());
    let est = t0.elapsed().max(Duration::from_nanos(100));
    let budget = budget();
    let total_iters = (budget.as_nanos() / est.as_nanos()).clamp(4, 100_000) as u64;
    // Split into batches so a best-batch figure filters scheduler noise.
    let batches = 4u64;
    let batch = (total_iters / batches).max(1);
    let mut total_ns = 0u128;
    let mut iters = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let ns = t.elapsed().as_nanos();
        total_ns += ns;
        iters += batch;
        best = best.min(ns as f64 / batch as f64);
    }
    let m = Measurement {
        name: name.to_string(),
        iters,
        mean_ns: total_ns as f64 / iters as f64,
        best_ns: best,
    };
    m.print();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("harness/self-test", || {
            (0..100u64).map(black_box).sum::<u64>()
        });
        assert!(m.mean_ns > 0.0);
        assert!(m.best_ns > 0.0);
        assert!(m.best_ns <= m.mean_ns * 1.001);
        assert!(m.iters >= 4);
    }

    #[test]
    fn human_units() {
        assert_eq!(Measurement::human(50.0), "50 ns");
        assert_eq!(Measurement::human(2_500.0), "2.50 us");
        assert_eq!(Measurement::human(3_200_000.0), "3.20 ms");
        assert_eq!(Measurement::human(1.5e9), "1.50 s");
    }
}
