//! The full sweep matrix behind the `sweep` binary, as a library — so the
//! binary stays a thin flag parser and the determinism contract (same CSV
//! at any `--threads` value) is testable without spawning processes.
//!
//! [`run_sweep`] expands designs × traffic patterns × injection rates ×
//! buffer policies into a flat point list, simulates every point on the
//! [`ebda_par`] pool, and renders rows **in point order** — each row is a
//! pure function of its point, so the CSV is byte-identical at every
//! thread count.

use crate::trace::journey_recorder;
use ebda_obs::{JourneyConfig, Recorder, TraceBuilder};
use ebda_routing::classic::{DimensionOrder, DuatoFullyAdaptive};
use ebda_routing::{RoutingRelation, Topology, TurnRouting};
use noc_sim::{simulate, simulate_traced, BufferPolicy, SimConfig, TrafficPattern};
use std::fmt::Write as _;

/// The CSV header every sweep emits.
pub const CSV_HEADER: &str = "design,traffic,rate,policy,avg_latency,p50_latency,p99_latency,\
                              p999_latency,throughput,balance_cv,outcome";

/// The rendered sweep: CSV text plus the merged journey timeline when one
/// was requested.
pub struct SweepOutput {
    /// Header plus one row per point, in matrix order.
    pub csv: String,
    /// One Chrome-trace run per point, in matrix order, when journey
    /// tracing was requested.
    pub journeys: Option<TraceBuilder>,
}

/// One cell of the sweep matrix.
struct Point<'a> {
    design: &'a str,
    relation: &'a dyn RoutingRelation,
    traffic_name: &'a str,
    traffic: TrafficPattern,
    rate: f64,
    policy_name: &'a str,
    policy: BufferPolicy,
}

/// Runs the full (or `--quick`) sweep matrix on `threads` workers and
/// renders the CSV. Pass the journey configuration to also collect a
/// per-point packet-journey timeline.
pub fn run_sweep(quick: bool, threads: usize, journeys: Option<JourneyConfig>) -> SweepOutput {
    let _p = ebda_obs::prof::phase("sweep/run");
    let topo = if quick {
        Topology::mesh(&[4, 4])
    } else {
        Topology::mesh(&[8, 8])
    };
    let mut designs: Vec<(&str, Box<dyn RoutingRelation>)> = vec![
        ("xy", Box::new(DimensionOrder::xy())),
        (
            "ebda-dyxy",
            Box::new(TurnRouting::from_design("fa", &ebda_core::catalog::fig7b_dyxy()).unwrap()),
        ),
    ];
    if !quick {
        designs.push((
            "west-first",
            Box::new(TurnRouting::from_design("wf", &ebda_core::catalog::p3_west_first()).unwrap()),
        ));
        designs.push((
            "odd-even",
            Box::new(TurnRouting::from_design("oe", &ebda_core::catalog::odd_even()).unwrap()),
        ));
        designs.push(("duato", Box::new(DuatoFullyAdaptive::new(2))));
    }
    let traffics: &[(&str, TrafficPattern)] = if quick {
        &[("uniform", TrafficPattern::Uniform)]
    } else {
        &[
            ("uniform", TrafficPattern::Uniform),
            ("transpose", TrafficPattern::Transpose),
            ("bitcomp", TrafficPattern::BitComplement),
        ]
    };
    let rates: &[f64] = if quick {
        &[0.02, 0.05]
    } else {
        &[0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12]
    };

    let mut points: Vec<Point> = Vec::new();
    for (name, relation) in &designs {
        for (tname, traffic) in traffics {
            for &rate in rates {
                for (pname, policy) in [
                    ("multi", BufferPolicy::MultiPacket),
                    ("single", BufferPolicy::SinglePacket),
                ] {
                    points.push(Point {
                        design: name,
                        relation: relation.as_ref(),
                        traffic_name: tname,
                        traffic: traffic.clone(),
                        rate,
                        policy_name: pname,
                        policy,
                    });
                }
            }
        }
    }

    ebda_obs::prof::work("sweep/run", "points", points.len() as u64);
    // Each point simulates independently and renders its own row; the
    // index-order merge below makes the CSV thread-count invariant.
    let rows: Vec<(String, Option<(String, Recorder)>)> =
        ebda_par::parallel_map(threads, &points, |_, p| {
            let cfg = SimConfig {
                injection_rate: p.rate,
                traffic: p.traffic.clone(),
                buffer_policy: p.policy,
                warmup: if quick { 100 } else { 500 },
                measurement: if quick { 400 } else { 2_000 },
                drain: if quick { 600 } else { 2_500 },
                deadlock_threshold: if quick { 400 } else { 1_200 },
                collect_latencies: false,
                ..SimConfig::default()
            };
            let (r, journey) = match &journeys {
                Some(jcfg) => {
                    // One journey-only recorder per point, merged into a
                    // single timeline: each point becomes its own
                    // Chrome-trace process.
                    let mut rec = journey_recorder(jcfg.clone());
                    let r = simulate_traced(&topo, p.relation, &cfg, Some(&mut rec));
                    let label = format!(
                        "{} {} rate {} {}",
                        p.design, p.traffic_name, p.rate, p.policy_name
                    );
                    (r, Some((label, rec)))
                }
                None => (simulate(&topo, p.relation, &cfg), None),
            };
            ebda_obs::metrics::counter_add("ebda_sweep_points_total", &[], 1);
            let outcome = if r.outcome.is_deadlock_free() {
                if r.measured_delivered == r.measured_injected {
                    "ok"
                } else {
                    "saturated"
                }
            } else {
                "deadlock"
            };
            let mut row = String::new();
            let _ = writeln!(
                row,
                "{},{},{},{},{:.2},{},{},{},{:.4},{:.3},{outcome}",
                p.design,
                p.traffic_name,
                p.rate,
                p.policy_name,
                r.avg_latency,
                r.latency_hist.quantile(0.50).unwrap_or(0),
                r.latency_hist.quantile(0.99).unwrap_or(0),
                r.latency_hist.quantile(0.999).unwrap_or(0),
                r.throughput,
                r.channel_balance_cv().unwrap_or(f64::NAN),
            );
            (row, journey)
        });

    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');
    let mut timeline = journeys.map(|_| TraceBuilder::new());
    for (row, journey) in rows {
        csv.push_str(&row);
        if let (Some(builder), Some((label, rec))) = (timeline.as_mut(), journey) {
            builder.add_run(&label, rec.journeys().expect("journeys attached"));
        }
    }
    SweepOutput {
        csv,
        journeys: timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_csv_is_thread_count_invariant() {
        let serial = run_sweep(true, 1, None);
        let parallel = run_sweep(true, 8, None);
        assert_eq!(serial.csv, parallel.csv, "CSV must not depend on threads");
        // header + 2 designs x 1 traffic x 2 rates x 2 policies
        assert_eq!(serial.csv.lines().count(), 1 + 8);
        assert!(serial.csv.starts_with("design,traffic,rate,policy,"));
    }

    #[test]
    fn journey_timeline_labels_points_in_matrix_order() {
        let out = run_sweep(true, 4, Some(JourneyConfig::default()));
        let json = out.journeys.expect("journeys requested").finish();
        let first = json.find("xy uniform rate 0.02 multi").unwrap();
        let last = json.find("ebda-dyxy uniform rate 0.05 single").unwrap();
        assert!(first < last, "runs must appear in matrix order");
    }
}
