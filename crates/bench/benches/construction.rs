//! Construction costs: Algorithm 1 partitioning, Theorem 1–3 turn
//! extraction (Figures 3–9, Tables 1–3) and the Section 4 minimum-channel
//! constructions.
//!
//! Run with `cargo bench -p ebda-bench --bench construction`.

use ebda_bench::harness::bench;
use ebda_core::algorithm1::partition_network;
use ebda_core::algorithm2::{derive_all, enumerate_partitionings};
use ebda_core::exceptional::exceptional_partitionings;
use ebda_core::min_channels::{merged_partitioning, region_partitioning};
use ebda_core::sets::arrangement1;
use ebda_core::{catalog, extract_turns, parse_channels};
use std::hint::black_box;

fn main() {
    println!("== algorithm1 ==");
    for vcs in [vec![1u8, 1], vec![2, 2], vec![3, 2, 3], vec![4, 4, 4, 4]] {
        bench(&format!("algorithm1/{vcs:?}"), || {
            partition_network(black_box(&vcs)).unwrap()
        });
    }

    println!("== extract_turns ==");
    for (name, seq) in [
        ("west-first-2d", catalog::p3_west_first()),
        ("dyxy-6ch", catalog::fig7b_dyxy()),
        ("fig9b-16ch", catalog::fig9b()),
        ("fig9a-24ch", catalog::fig9a()),
    ] {
        bench(&format!("extract_turns/{name}"), || {
            extract_turns(black_box(&seq)).unwrap()
        });
    }

    println!("== derivations ==");
    bench("derivations/algorithm2-2d-2vc", || {
        derive_all(arrangement1(black_box(&[2, 2])).unwrap()).unwrap()
    });
    let channels = parse_channels("X+ X- Y+ Y-").unwrap();
    bench("derivations/enumerate-3-partitions", || {
        enumerate_partitionings(black_box(&channels), 3)
    });
    bench("derivations/exceptional-4d", || {
        exceptional_partitionings(black_box(4)).unwrap()
    });

    println!("== min_channels ==");
    for n in [2usize, 3, 4, 5] {
        bench(&format!("min_channels/merged/{n}"), || {
            merged_partitioning(black_box(n)).unwrap()
        });
        bench(&format!("min_channels/naive/{n}"), || {
            region_partitioning(black_box(n)).unwrap()
        });
    }
}
