//! Construction costs: Algorithm 1 partitioning, Theorem 1–3 turn
//! extraction (Figures 3–9, Tables 1–3) and the Section 4 minimum-channel
//! constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebda_core::algorithm1::partition_network;
use ebda_core::algorithm2::{derive_all, enumerate_partitionings};
use ebda_core::exceptional::exceptional_partitionings;
use ebda_core::min_channels::{merged_partitioning, region_partitioning};
use ebda_core::sets::arrangement1;
use ebda_core::{catalog, extract_turns, parse_channels};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1");
    for vcs in [vec![1u8, 1], vec![2, 2], vec![3, 2, 3], vec![4, 4, 4, 4]] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{vcs:?}")),
            &vcs,
            |b, vcs| b.iter(|| partition_network(black_box(vcs)).unwrap()),
        );
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract_turns");
    for (name, seq) in [
        ("west-first-2d", catalog::p3_west_first()),
        ("dyxy-6ch", catalog::fig7b_dyxy()),
        ("fig9b-16ch", catalog::fig9b()),
        ("fig9a-24ch", catalog::fig9a()),
    ] {
        g.bench_function(name, |b| b.iter(|| extract_turns(black_box(&seq)).unwrap()));
    }
    g.finish();
}

fn bench_derivations(c: &mut Criterion) {
    let mut g = c.benchmark_group("derivations");
    g.bench_function("algorithm2-2d-2vc", |b| {
        b.iter(|| derive_all(arrangement1(black_box(&[2, 2])).unwrap()).unwrap())
    });
    g.bench_function("enumerate-3-partitions", |b| {
        let channels = parse_channels("X+ X- Y+ Y-").unwrap();
        b.iter(|| enumerate_partitionings(black_box(&channels), 3))
    });
    g.bench_function("exceptional-4d", |b| {
        b.iter(|| exceptional_partitionings(black_box(4)).unwrap())
    });
    g.finish();
}

fn bench_min_channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("min_channels");
    for n in [2usize, 3, 4, 5] {
        g.bench_with_input(BenchmarkId::new("merged", n), &n, |b, &n| {
            b.iter(|| merged_partitioning(black_box(n)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| region_partitioning(black_box(n)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_extraction,
    bench_derivations,
    bench_min_channels
);
criterion_main!(benches);
