//! Simulator throughput: cycles of wormhole simulation per second for
//! deterministic and adaptive relations (E1/E2 workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, SimConfig, TrafficPattern};
use std::hint::black_box;

fn short_cfg(rate: f64) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        warmup: 100,
        measurement: 400,
        drain: 500,
        deadlock_threshold: 400,
        ..SimConfig::default()
    }
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_8x8");
    g.sample_size(10);
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let dyxy = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();

    g.bench_function("xy-rate0.05", |b| {
        b.iter(|| simulate(black_box(&topo), &xy, &short_cfg(0.05)))
    });
    g.bench_function("dyxy-rate0.05", |b| {
        b.iter(|| simulate(black_box(&topo), &dyxy, &short_cfg(0.05)))
    });
    let mut transpose = short_cfg(0.05);
    transpose.traffic = TrafficPattern::Transpose;
    g.bench_function("dyxy-transpose", |b| {
        b.iter(|| simulate(black_box(&topo), &dyxy, &transpose))
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
