//! Simulator throughput: cycles of wormhole simulation per second for
//! deterministic and adaptive relations (E1/E2 workloads), plus the
//! flight-recorder overhead check — the recorder-disabled path must cost
//! the same as the plain `simulate` entry point.
//!
//! Run with `cargo bench -p ebda-bench --bench simulation`.

use ebda_bench::harness::bench;
use ebda_obs::{Recorder, RecorderConfig};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, simulate_traced, SimConfig, TrafficPattern};
use std::hint::black_box;

fn short_cfg(rate: f64) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        warmup: 100,
        measurement: 400,
        drain: 500,
        deadlock_threshold: 400,
        ..SimConfig::default()
    }
}

fn main() {
    println!("== simulate_8x8 ==");
    let topo = Topology::mesh(&[8, 8]);
    let xy = DimensionOrder::xy();
    let dyxy = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();

    bench("simulate_8x8/xy-rate0.05", || {
        simulate(black_box(&topo), &xy, &short_cfg(0.05))
    });
    bench("simulate_8x8/dyxy-rate0.05", || {
        simulate(black_box(&topo), &dyxy, &short_cfg(0.05))
    });
    let mut transpose = short_cfg(0.05);
    transpose.traffic = TrafficPattern::Transpose;
    bench("simulate_8x8/dyxy-transpose", || {
        simulate(black_box(&topo), &dyxy, &transpose)
    });

    println!("== recorder overhead ==");
    // Acceptance check: with no recorder attached the traced entry point
    // must cost the same as plain simulate; with one attached, the cost of
    // event recording is visible and bounded.
    let cfg = short_cfg(0.05);
    let off = bench("recorder/disabled (simulate)", || {
        simulate(black_box(&topo), &xy, &cfg)
    });
    let off_traced = bench("recorder/disabled (simulate_traced None)", || {
        simulate_traced(black_box(&topo), &xy, &cfg, None)
    });
    let on = bench("recorder/enabled (full event log)", || {
        let mut rec = Recorder::new(RecorderConfig::default());
        let r = simulate_traced(black_box(&topo), &xy, &cfg, Some(&mut rec));
        black_box(rec.total_events());
        r
    });
    let disabled_overhead = (off_traced.best_ns - off.best_ns) / off.best_ns * 100.0;
    let enabled_overhead = (on.best_ns - off.best_ns) / off.best_ns * 100.0;
    println!("disabled-path overhead vs simulate: {disabled_overhead:+.1}% (noise-level expected)");
    println!("enabled-path overhead vs simulate:  {enabled_overhead:+.1}%");
}
