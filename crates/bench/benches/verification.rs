//! Verification costs — the Section 2 scalability story measured: one
//! EbDa construction + Dally check vs brute-force turn-model enumeration.
//!
//! Run with `cargo bench -p ebda-bench --bench verification`.

use ebda_bench::harness::bench;
use ebda_cdg::turn_model::deadlock_free_combinations_2d;
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm1::partition_network;
use ebda_core::catalog;
use std::hint::black_box;

fn main() {
    println!("== dally_verify ==");
    let seq = catalog::fig7b_dyxy();
    for radix in [4usize, 8, 16] {
        let topo = Topology::mesh(&[radix, radix]);
        bench(&format!("dally_verify/dyxy-2d/{radix}"), || {
            verify_design(black_box(&topo), black_box(&seq)).unwrap()
        });
    }
    let topo3 = Topology::mesh(&[4, 4, 4]);
    let seq3 = catalog::fig9b();
    bench("dally_verify/fig9b-3d-4x4x4", || {
        verify_design(black_box(&topo3), black_box(&seq3)).unwrap()
    });

    println!("== design_and_verify_2d ==");
    let topo = Topology::mesh(&[6, 6]);
    bench("design_and_verify_2d/ebda-construct+verify", || {
        let seq = partition_network(black_box(&[1, 1])).unwrap();
        verify_design(&topo, &seq).unwrap()
    });
    bench("design_and_verify_2d/turn-model-brute-force-16", || {
        deadlock_free_combinations_2d(black_box(6))
    });
}
