//! Verification costs — the Section 2 scalability story measured: one
//! EbDa construction + Dally check vs brute-force turn-model enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebda_cdg::turn_model::deadlock_free_combinations_2d;
use ebda_cdg::{verify_design, Topology};
use ebda_core::algorithm1::partition_network;
use ebda_core::catalog;
use std::hint::black_box;

fn bench_dally_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("dally_verify");
    for radix in [4usize, 8, 16] {
        let topo = Topology::mesh(&[radix, radix]);
        let seq = catalog::fig7b_dyxy();
        g.bench_with_input(BenchmarkId::new("dyxy-2d", radix), &topo, |b, topo| {
            b.iter(|| verify_design(black_box(topo), black_box(&seq)).unwrap())
        });
    }
    let topo3 = Topology::mesh(&[4, 4, 4]);
    let seq3 = catalog::fig9b();
    g.bench_function("fig9b-3d-4x4x4", |b| {
        b.iter(|| verify_design(black_box(&topo3), black_box(&seq3)).unwrap())
    });
    g.finish();
}

fn bench_ebda_vs_brute_force(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_and_verify_2d");
    g.sample_size(20);
    let topo = Topology::mesh(&[6, 6]);
    g.bench_function("ebda-construct+verify", |b| {
        b.iter(|| {
            let seq = partition_network(black_box(&[1, 1])).unwrap();
            verify_design(&topo, &seq).unwrap()
        })
    });
    g.bench_function("turn-model-brute-force-16", |b| {
        b.iter(|| deadlock_free_combinations_2d(black_box(6)))
    });
    g.finish();
}

criterion_group!(benches, bench_dally_check, bench_ebda_vs_brute_force);
criterion_main!(benches);
