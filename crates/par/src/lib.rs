//! Deterministic fork-join parallelism on std alone — no rayon, no
//! crossbeam, matching the workspace's zero-external-dependency rule.
//!
//! The one primitive is [`parallel_map`]: apply a function to every
//! element of a slice and get the results back **in index order**,
//! regardless of which worker computed what. Work is handed out through
//! a single atomic cursor (each worker claims the next unclaimed index),
//! results flow back over an `mpsc` channel tagged with their index, and
//! the caller scatters them into a pre-sized buffer. Because the output
//! only depends on `f(i, &items[i])` per index, a caller whose `f` is a
//! pure function gets byte-identical results at any thread count — that
//! is the determinism contract the sweep/oracle layers build on (see
//! `docs/PERFORMANCE.md`).
//!
//! Thread-count resolution is layered: an explicit `threads` argument
//! wins, then a process-wide override installed by [`set_threads`]
//! (bound to `--threads` by the CLI layer), then the `EBDA_THREADS`
//! environment variable, then [`std::thread::available_parallelism`].
//! `threads <= 1` (or a single-element slice) takes a strictly serial
//! in-place path: no threads are spawned, no channel exists, and
//! execution is exactly today's sequential loop.
//!
//! When the metrics registry is enabled the pool reports
//! `ebda_par_tasks_total`, `ebda_par_jobs_total`,
//! `ebda_par_worker_busy_ns_total`, `ebda_par_worker_idle_ns_total` and
//! an `ebda_par_queue_depth` gauge, so `/metrics` and `ebda monitor`
//! show pool health next to the simulator counters.
//!
//! When the self-profiler (`ebda_obs::prof`) is enabled each worker
//! additionally records one busy segment per task — batched locally and
//! pushed once at worker exit — which the profile export renders as one
//! Perfetto track per worker (gaps between slices are the idle time).
//! The serial path records its tasks as worker 0, so a `--threads 1`
//! profile still shows the timeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count override (0 clears it, returning
/// resolution to `EBDA_THREADS` / hardware). The CLI layer calls this
/// from `--threads N`; libraries should accept an explicit count instead
/// so tests never race on this global.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of hardware threads the runtime reports (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves the effective thread count: [`set_threads`] override, then
/// `EBDA_THREADS`, then [`available`]. Always at least 1.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = std::env::var("EBDA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    available()
}

/// Maps `f` over `items` with up to `threads` workers, returning results
/// in index order. `threads == 0` resolves via [`threads()`].
///
/// `f` is called exactly once per index (never for indexes past the
/// slice), and a panic in any call propagates to the caller after the
/// remaining workers drain, exactly like a panic in a serial loop.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        self::threads()
    } else {
        threads
    };
    let metrics_on = ebda_obs::metrics::enabled();
    let prof_on = ebda_obs::prof::enabled();
    if metrics_on {
        ebda_obs::metrics::counter_add("ebda_par_jobs_total", &[], 1);
        ebda_obs::metrics::counter_add("ebda_par_tasks_total", &[], items.len() as u64);
    }
    if threads <= 1 || items.len() <= 1 {
        if prof_on {
            // Same sequential loop, with each task recorded as a busy
            // segment of "worker 0" so serial profiles show a timeline.
            let mut segments = Vec::with_capacity(items.len());
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let start_ns = ebda_obs::prof::now_ns();
                    let t0 = Instant::now();
                    let r = f(i, t);
                    segments.push(ebda_obs::prof::WorkerSegment {
                        worker: 0,
                        label: format!("task {i}"),
                        start_ns,
                        dur_ns: t0.elapsed().as_nanos() as u64,
                    });
                    r
                })
                .collect();
            ebda_obs::prof::push_worker_segments(segments);
            return out;
        }
        // Serial path: today's sequential loop, verbatim. No pool, no
        // channel, no reordering — `--threads 1` means this code.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || {
                let spawned = Instant::now();
                let mut busy_ns: u64 = 0;
                let mut segments: Vec<ebda_obs::prof::WorkerSegment> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if metrics_on {
                        let depth = items.len().saturating_sub(i + 1);
                        ebda_obs::metrics::gauge_set("ebda_par_queue_depth", &[], depth as f64);
                    }
                    let start_ns = if prof_on { ebda_obs::prof::now_ns() } else { 0 };
                    let t0 = Instant::now();
                    let r = f(i, &items[i]);
                    let task_ns = t0.elapsed().as_nanos() as u64;
                    busy_ns += task_ns;
                    if prof_on {
                        segments.push(ebda_obs::prof::WorkerSegment {
                            worker: w,
                            label: format!("task {i}"),
                            start_ns,
                            dur_ns: task_ns,
                        });
                    }
                    // The receiver outlives the scope; send only fails if
                    // the parent panicked, and then we are unwinding anyway.
                    let _ = tx.send((i, r));
                }
                if metrics_on {
                    let alive_ns = spawned.elapsed().as_nanos() as u64;
                    ebda_obs::metrics::counter_add("ebda_par_worker_busy_ns_total", &[], busy_ns);
                    ebda_obs::metrics::counter_add(
                        "ebda_par_worker_idle_ns_total",
                        &[],
                        alive_ns.saturating_sub(busy_ns),
                    );
                }
                ebda_obs::prof::push_worker_segments(segments);
            });
        }
        drop(tx);
        // Scatter results as they arrive; index tags restore order.
        for (i, r) in rx.iter() {
            out[i] = Some(r);
        }
    });
    if metrics_on {
        ebda_obs::metrics::gauge_set("ebda_par_queue_depth", &[], 0.0);
    }
    out.into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let items: Vec<u64> = (0..97).collect();
        let got = parallel_map(8, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..40).rev().collect();
        let f = |_: usize, &x: &u32| x.wrapping_mul(2654435761).rotate_left(7);
        let serial = parallel_map(1, &items, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(parallel_map(threads, &items, f), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u8], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        parallel_map(6, &items, |i, _| counts[i].fetch_add(1, Ordering::Relaxed));
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(parallel_map(32, &items, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn override_beats_env_and_hardware() {
        // Not parallel-test safe in general, but this is the only test in
        // the crate that touches the global, and it restores it.
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        parallel_map(4, &items, |_, &x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn profiler_records_worker_segments_on_both_paths() {
        // Existence assertions only: sibling tests may run parallel_map
        // concurrently while the global profiler is enabled.
        ebda_obs::prof::set_enabled(true);
        let items: Vec<u32> = (0..9).collect();
        let serial = parallel_map(1, &items, |_, &x| x + 1);
        let parallel = parallel_map(4, &items, |_, &x| x + 1);
        ebda_obs::prof::set_enabled(false);
        assert_eq!(serial, parallel);
        let snap = ebda_obs::prof::snapshot();
        let on_worker_0 = snap.workers.iter().filter(|s| s.worker == 0).count();
        assert!(on_worker_0 >= 9, "serial path must record as worker 0");
        assert!(
            snap.workers.iter().any(|s| s.label == "task 8"),
            "every task index gets a labelled segment"
        );
        assert!(snap.workers.len() >= 18, "both jobs record all tasks");
    }

    #[test]
    fn pool_metrics_are_emitted() {
        ebda_obs::metrics::set_enabled(true);
        let before = ebda_obs::metrics::global().counter_value("ebda_par_tasks_total", &[]);
        let items: Vec<u32> = (0..12).collect();
        parallel_map(4, &items, |_, &x| x);
        let after = ebda_obs::metrics::global().counter_value("ebda_par_tasks_total", &[]);
        ebda_obs::metrics::set_enabled(false);
        assert_eq!(after - before, 12);
    }
}
